// Tests for the baseline and heuristic training strategies (Sec. 2 / 3.3).
#include <gtest/gtest.h>

#include <stdexcept>

#include "train/adapt.hpp"
#include "train/baseline.hpp"
#include "train/multimodel.hpp"
#include "train/nonbinary.hpp"
#include "train/retrain.hpp"
#include "train_test_util.hpp"

namespace lehdc::train {
namespace {

using test::make_encoded_fixture;
using test::make_multimodal_fixture;

TEST(BundleClasses, MajorityOfOneSampleIsTheSample) {
  const auto fixture = make_encoded_fixture(3, 256, 1, 0, 0, 1);
  const auto classes = bundle_classes(fixture.train, 1);
  ASSERT_EQ(classes.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(classes[k], fixture.prototypes[k]);
  }
}

TEST(BundleClasses, MajorityDenoisesTowardPrototype) {
  const auto fixture = make_encoded_fixture(2, 1024, 31, 0, 200, 2);
  const auto classes = bundle_classes(fixture.train, 1);
  // Majority over 31 noisy copies recovers the prototype almost exactly.
  EXPECT_LT(hv::BitVector::hamming(classes[0], fixture.prototypes[0]), 30u);
  EXPECT_LT(hv::BitVector::hamming(classes[1], fixture.prototypes[1]), 30u);
}

TEST(BundleClasses, RequiresEverySeededClass) {
  hdc::EncodedDataset dataset(64, 3);
  util::Rng rng(3);
  dataset.add(hv::BitVector::random(64, rng), 0);
  dataset.add(hv::BitVector::random(64, rng), 2);  // class 1 empty
  EXPECT_THROW((void)bundle_classes(dataset, 1), std::invalid_argument);
}

TEST(AccumulateClasses, SumsPerClass) {
  const auto fixture = make_encoded_fixture(2, 128, 5, 0, 10, 4);
  const auto sums = accumulate_classes(fixture.train);
  ASSERT_EQ(sums.size(), 2u);
  hv::IntVector expected(128);
  for (std::size_t i = 0; i < fixture.train.size(); ++i) {
    if (fixture.train.label(i) == 0) {
      expected.add(fixture.train.hypervector(i));
    }
  }
  EXPECT_EQ(sums[0], expected);
}

TEST(BaselineTrainer, PerfectOnSeparableData) {
  const auto fixture = make_encoded_fixture(4, 1024, 20, 10, 100, 5);
  const BaselineTrainer trainer;
  TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_EQ(result.model->accuracy(fixture.test), 1.0);
  EXPECT_EQ(result.epochs_run, 1u);
  EXPECT_NE(result.model->as_binary(), nullptr);
}

TEST(BaselineTrainer, RecordsSingleTrajectoryPoint) {
  const auto fixture = make_encoded_fixture(2, 256, 8, 4, 30, 6);
  const BaselineTrainer trainer;
  TrainOptions options;
  options.seed = 1;
  options.test = &fixture.test;
  options.epoch_observer = record_trajectory();
  const auto result = trainer.train(fixture.train, options);
  ASSERT_EQ(result.trajectory.size(), 1u);
  EXPECT_GT(result.trajectory[0].train_accuracy, 0.9);
  EXPECT_GT(result.trajectory[0].test_accuracy, 0.9);
}

TEST(BaselineTrainer, WeakOnHardOverlappingClasses) {
  // Eq. 2 averaging leaves accuracy on the table when classes are
  // multi-modal mixtures with low separation — the limitation Sec. 3.2
  // attributes to the heuristic training.
  const auto fixture = test::make_hard_fixture(21);
  const BaselineTrainer trainer;
  TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  const double accuracy = result.model->accuracy(fixture.test);
  EXPECT_LT(accuracy, 0.97);
  EXPECT_GT(accuracy, 0.4);  // far above the 25% chance level
}

TEST(RetrainingTrainer, ImprovesOnHardBaseline) {
  const auto fixture = test::make_hard_fixture(22);
  TrainOptions options;
  options.seed = 1;
  const BaselineTrainer baseline;
  const double base_acc =
      baseline.train(fixture.train, options).model->accuracy(fixture.test);
  RetrainConfig cfg;
  cfg.iterations = 30;
  const RetrainingTrainer retraining(cfg);
  const double retrain_acc =
      retraining.train(fixture.train, options).model->accuracy(fixture.test);
  EXPECT_GT(retrain_acc, base_acc - 0.02);
  // Training accuracy must improve decisively.
  const double base_train =
      baseline.train(fixture.train, options).model->accuracy(fixture.train);
  const double retrain_train = retraining.train(fixture.train, options)
                                   .model->accuracy(fixture.train);
  EXPECT_GT(retrain_train, base_train);
}

TEST(RetrainingTrainer, StopsEarlyWhenSeparable) {
  const auto fixture = make_encoded_fixture(3, 512, 15, 5, 50, 9);
  RetrainConfig cfg;
  cfg.iterations = 100;
  cfg.stop_when_converged = true;
  const RetrainingTrainer trainer(cfg);
  TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_LT(result.epochs_run, 100u);
  EXPECT_EQ(result.model->accuracy(fixture.train), 1.0);
}

TEST(RetrainingTrainer, TrajectoryCoversIterations) {
  const auto fixture = make_multimodal_fixture(3, 256, 8, 4, 20, 10);
  RetrainConfig cfg;
  cfg.iterations = 10;
  cfg.stop_when_converged = false;
  const RetrainingTrainer trainer(cfg);
  TrainOptions options;
  options.seed = 1;
  options.test = &fixture.test;
  options.epoch_observer = record_trajectory();
  const auto result = trainer.train(fixture.train, options);
  // One point per iteration plus the final model.
  EXPECT_EQ(result.trajectory.size(), 11u);
  EXPECT_EQ(result.trajectory.front().epoch, 0u);
  EXPECT_EQ(result.trajectory.back().epoch, 10u);
}

TEST(RetrainingTrainer, ValidatesConfig) {
  RetrainConfig bad;
  bad.alpha = 0.0f;
  EXPECT_THROW(RetrainingTrainer{bad}, std::invalid_argument);
  RetrainConfig bad_iters;
  bad_iters.iterations = 0;
  EXPECT_THROW(RetrainingTrainer{bad_iters}, std::invalid_argument);
}

TEST(EnhancedRetraining, AtLeastMatchesBasicOnMultimodal) {
  const auto fixture = make_multimodal_fixture(5, 512, 10, 6, 40, 11);
  RetrainConfig cfg;
  cfg.iterations = 20;
  cfg.stop_when_converged = false;
  TrainOptions options;
  options.seed = 2;
  const RetrainingTrainer basic(cfg);
  const EnhancedRetrainingTrainer enhanced(cfg);
  const double basic_acc =
      basic.train(fixture.train, options).model->accuracy(fixture.test);
  const double enhanced_acc =
      enhanced.train(fixture.train, options).model->accuracy(fixture.test);
  EXPECT_GE(enhanced_acc + 0.05, basic_acc);  // allow small noise margin
}

TEST(AdaptHd, BothModesTrainSuccessfully) {
  const auto fixture = make_multimodal_fixture(3, 512, 10, 5, 30, 12);
  TrainOptions options;
  options.seed = 1;
  for (const auto mode :
       {AdaptMode::kDataDependent, AdaptMode::kIterationDependent}) {
    AdaptConfig cfg;
    cfg.iterations = 20;
    cfg.mode = mode;
    const AdaptHdTrainer trainer(cfg);
    const auto result = trainer.train(fixture.train, options);
    EXPECT_GT(result.model->accuracy(fixture.test), 0.5);
  }
}

TEST(AdaptHd, ValidatesConfig) {
  AdaptConfig bad;
  bad.alpha_min = 2.0f;
  bad.alpha_max = 1.0f;
  EXPECT_THROW(AdaptHdTrainer{bad}, std::invalid_argument);
}

TEST(MultiModel, CompetitiveWithBaselineOnHardData) {
  const auto fixture = test::make_hard_fixture(23);
  TrainOptions options;
  options.seed = 1;
  const BaselineTrainer baseline;
  const double base_acc =
      baseline.train(fixture.train, options).model->accuracy(fixture.test);
  MultiModelConfig cfg;
  cfg.models_per_class = 4;
  cfg.epochs = 10;
  const MultiModelTrainer trainer(cfg);
  const double mm_acc =
      trainer.train(fixture.train, options).model->accuracy(fixture.test);
  // The ensemble captures the sub-cluster structure the centroid blurs.
  EXPECT_GT(mm_acc, base_acc - 0.03);
}

TEST(MultiModel, HandlesFewerSamplesThanModels) {
  // 2 samples per class but 8 models per class: empty groups fall back to
  // random hypervectors and training must not crash.
  const auto fixture = make_encoded_fixture(3, 256, 2, 2, 20, 14);
  MultiModelConfig cfg;
  cfg.models_per_class = 8;
  cfg.epochs = 3;
  const MultiModelTrainer trainer(cfg);
  TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_GT(result.model->accuracy(fixture.train), 0.5);
}

TEST(MultiModel, KeepBestNeverWorseThanFinalState) {
  const auto fixture = make_multimodal_fixture(3, 256, 10, 5, 40, 15);
  TrainOptions options;
  options.seed = 3;
  MultiModelConfig aggressive;
  aggressive.models_per_class = 4;
  aggressive.epochs = 12;
  aggressive.flip_probability = 0.2f;  // destructive without keep_best
  aggressive.flip_decay = 1.0f;
  aggressive.keep_best = true;
  const MultiModelTrainer with_best(aggressive);
  aggressive.keep_best = false;
  const MultiModelTrainer without_best(aggressive);
  const double with_acc =
      with_best.train(fixture.train, options).model->accuracy(fixture.train);
  const double without_acc = without_best.train(fixture.train, options)
                                 .model->accuracy(fixture.train);
  EXPECT_GE(with_acc + 1e-9, without_acc);
}

TEST(MultiModel, StorageReflectsEnsembleSize) {
  const auto fixture = make_encoded_fixture(2, 128, 4, 0, 10, 16);
  MultiModelConfig cfg;
  cfg.models_per_class = 4;
  cfg.epochs = 1;
  const MultiModelTrainer trainer(cfg);
  TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_EQ(result.model->storage_bits(), 2u * 4u * 128u);
  EXPECT_EQ(result.model->as_binary(), nullptr);
}

TEST(MultiModel, ValidatesConfig) {
  MultiModelConfig bad;
  bad.models_per_class = 0;
  EXPECT_THROW(MultiModelTrainer{bad}, std::invalid_argument);
  MultiModelConfig bad_flip;
  bad_flip.flip_probability = 0.0f;
  EXPECT_THROW(MultiModelTrainer{bad_flip}, std::invalid_argument);
}

TEST(NonBinary, AccumulationOnlyClassifiesSeparableData) {
  const auto fixture = make_encoded_fixture(3, 512, 10, 5, 60, 17);
  NonBinaryConfig cfg;  // retrain_epochs = 0
  const NonBinaryTrainer trainer(cfg);
  TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_EQ(result.model->accuracy(fixture.test), 1.0);
  EXPECT_EQ(result.epochs_run, 1u);
}

TEST(NonBinary, PerceptronRetrainingImprovesMultimodal) {
  const auto fixture = make_multimodal_fixture(4, 512, 12, 6, 30, 18);
  TrainOptions options;
  options.seed = 1;
  NonBinaryConfig plain;
  const double plain_acc = NonBinaryTrainer(plain)
                               .train(fixture.train, options)
                               .model->accuracy(fixture.test);
  NonBinaryConfig retrained;
  retrained.retrain_epochs = 20;
  const double retrained_acc = NonBinaryTrainer(retrained)
                                   .train(fixture.train, options)
                                   .model->accuracy(fixture.test);
  EXPECT_GT(retrained_acc, plain_acc - 1e-9);
}

TEST(NonBinary, StorageCountsComponentWidth) {
  const auto fixture = make_encoded_fixture(2, 128, 4, 0, 10, 19);
  const NonBinaryTrainer trainer;
  TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_EQ(result.model->storage_bits(), 2u * 128u * 32u);
}

TEST(Trainers, EmptyDatasetRejectedEverywhere) {
  const hdc::EncodedDataset empty(64, 2);
  TrainOptions options;
  EXPECT_THROW((void)BaselineTrainer().train(empty, options),
               std::invalid_argument);
  EXPECT_THROW((void)RetrainingTrainer().train(empty, options),
               std::invalid_argument);
  EXPECT_THROW((void)EnhancedRetrainingTrainer().train(empty, options),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptHdTrainer().train(empty, options),
               std::invalid_argument);
  EXPECT_THROW((void)MultiModelTrainer().train(empty, options),
               std::invalid_argument);
  EXPECT_THROW((void)NonBinaryTrainer().train(empty, options),
               std::invalid_argument);
}

TEST(Trainers, NamesMatchTableRows) {
  EXPECT_EQ(BaselineTrainer().name(), "Baseline");
  EXPECT_EQ(RetrainingTrainer().name(), "Retraining");
  EXPECT_EQ(EnhancedRetrainingTrainer().name(), "EnhancedRetraining");
  EXPECT_EQ(AdaptHdTrainer().name(), "AdaptHD");
  EXPECT_EQ(MultiModelTrainer().name(), "Multi-Model");
  EXPECT_EQ(NonBinaryTrainer().name(), "NonBinaryHDC");
}

}  // namespace
}  // namespace lehdc::train
