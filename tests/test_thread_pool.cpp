#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lehdc::util {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(0, visits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      visits[i].fetch_add(1);
    }
  });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RejectsInvertedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, 5, [](std::size_t, std::size_t) {}),
      std::invalid_argument);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(0, 10, [&](std::size_t, std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) {
                            throw std::runtime_error("worker failure");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SumReductionMatchesSerial) {
  ThreadPool pool(3);
  const std::size_t n = 10000;
  std::atomic<long long> total{0};
  pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      local += static_cast<long long>(i);
    }
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, FreeFunctionWrapperWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(7, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 7u);
    EXPECT_EQ(hi, 8u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace lehdc::util
