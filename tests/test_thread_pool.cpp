#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lehdc::util {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(0, visits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      visits[i].fetch_add(1);
    }
  });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RejectsInvertedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, 5, [](std::size_t, std::size_t) {}),
      std::invalid_argument);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(0, 10, [&](std::size_t, std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) {
                            throw std::runtime_error("worker failure");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SumReductionMatchesSerial) {
  ThreadPool pool(3);
  const std::size_t n = 10000;
  std::atomic<long long> total{0};
  pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      local += static_cast<long long>(i);
    }
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A parallel_for issued from inside a worker must execute inline on that
  // worker instead of enqueueing (enqueue-and-wait can stall the pool once
  // every worker blocks on chunks nobody is free to run).
  ThreadPool pool(4);
  std::atomic<int> outer_count{0};
  std::atomic<int> inner_count{0};
  std::atomic<int> inner_off_thread{0};
  pool.parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    outer_count.fetch_add(static_cast<int>(hi - lo));
    const auto worker = std::this_thread::get_id();
    pool.parallel_for(0, 16, [&](std::size_t ilo, std::size_t ihi) {
      inner_count.fetch_add(static_cast<int>(ihi - ilo));
      if (std::this_thread::get_id() != worker) {
        inner_off_thread.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(outer_count.load(), 8);
  // One inner sweep of 16 per outer chunk; chunks = min(8, 4) = 4.
  EXPECT_EQ(inner_count.load(), 16 * 4);
  EXPECT_EQ(inner_off_thread.load(), 0);
}

TEST(ThreadPool, DeeplyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t, std::size_t) {
      pool.parallel_for(0, 4, [&](std::size_t lo, std::size_t hi) {
        leaves.fetch_add(static_cast<int>(hi - lo));
      });
    });
  });
  EXPECT_GT(leaves.load(), 0);
}

TEST(ThreadPool, NestedOnDifferentPoolStillWorks) {
  // Nesting across two distinct pools is not reentrant and must still
  // fan out on the inner pool.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> count{0};
  outer.parallel_for(0, 4, [&](std::size_t, std::size_t) {
    inner.parallel_for(0, 32, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(count.load(), 32 * 2);
}

TEST(ThreadPool, NestedExceptionPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 6,
                        [&](std::size_t, std::size_t) {
                          pool.parallel_for(0, 6, [](std::size_t lo,
                                                     std::size_t) {
                            if (lo == 0) {
                              throw std::runtime_error("nested failure");
                            }
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, AllChunksThrowingPropagatesExactlyOneError) {
  // When every chunk fails, the caller still sees a single exception (the
  // first recorded one), not a terminate from a second in-flight throw.
  ThreadPool pool(4);
  std::atomic<int> throws{0};
  try {
    pool.parallel_for(0, 64, [&](std::size_t, std::size_t) {
      throws.fetch_add(1);
      throw std::runtime_error("chunk failure");
    });
    FAIL() << "parallel_for should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk failure");
  }
  EXPECT_GT(throws.load(), 0);
}

TEST(ThreadPool, UsableAfterException) {
  // A failed sweep must not poison the pool: error state is per-sweep,
  // and the workers stay alive for subsequent calls.
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 12,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 48, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 48);
}

TEST(ThreadPool, OffsetRangeCoversExactlyOnce) {
  // Ranges need not start at zero (callers pass row windows).
  ThreadPool pool(4);
  constexpr std::size_t kBegin = 1000;
  constexpr std::size_t kEnd = 2000;
  std::vector<std::atomic<int>> visits(kEnd - kBegin);
  pool.parallel_for(kBegin, kEnd, [&](std::size_t lo, std::size_t hi) {
    ASSERT_GE(lo, kBegin);
    ASSERT_LE(hi, kEnd);
    for (std::size_t i = lo; i < hi; ++i) {
      visits[i - kBegin].fetch_add(1);
    }
  });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPool, DestructionWhileIdleIsClean) {
  // Construct/destroy churn: destruction with no queued work must join
  // all workers without hanging or leaking (ASan/TSan modes verify).
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(0, 16, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
    ASSERT_EQ(count.load(), 16);
  }
}

TEST(ThreadPool, ParseWorkerCount) {
  EXPECT_EQ(parse_worker_count(nullptr), 0u);
  EXPECT_EQ(parse_worker_count(""), 0u);
  EXPECT_EQ(parse_worker_count("8"), 8u);
  EXPECT_EQ(parse_worker_count("1"), 1u);
  EXPECT_EQ(parse_worker_count("0"), 0u);
  EXPECT_EQ(parse_worker_count("-3"), 0u);
  EXPECT_EQ(parse_worker_count("abc"), 0u);
  EXPECT_EQ(parse_worker_count("4x"), 0u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, FreeFunctionWrapperWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(7, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 7u);
    EXPECT_EQ(hi, 8u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace lehdc::util
