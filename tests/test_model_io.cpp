#include "hdc/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/rng.hpp"

namespace lehdc::hdc {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

BinaryClassifier make_classifier(std::size_t classes, std::size_t dim,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hv::BitVector> hvs;
  for (std::size_t k = 0; k < classes; ++k) {
    hvs.push_back(hv::BitVector::random(dim, rng));
  }
  return BinaryClassifier(std::move(hvs));
}

TEST(ModelIo, RoundTripPreservesModel) {
  const auto path = temp_path("roundtrip.lhdc");
  const BinaryClassifier original = make_classifier(5, 1000, 1);
  save_classifier(original, path);
  const BinaryClassifier loaded = load_classifier(path);
  ASSERT_EQ(loaded.class_count(), 5u);
  ASSERT_EQ(loaded.dim(), 1000u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(loaded.class_hypervector(k), original.class_hypervector(k));
  }
  std::remove(path.c_str());
}

TEST(ModelIo, RoundTripAtWordBoundary) {
  const auto path = temp_path("boundary.lhdc");
  const BinaryClassifier original = make_classifier(2, 64, 2);
  save_classifier(original, path);
  const BinaryClassifier loaded = load_classifier(path);
  EXPECT_EQ(loaded.class_hypervector(1), original.class_hypervector(1));
  std::remove(path.c_str());
}

TEST(ModelIo, LoadedModelPredictsIdentically) {
  const auto path = temp_path("predict.lhdc");
  const BinaryClassifier original = make_classifier(4, 777, 3);
  save_classifier(original, path);
  const BinaryClassifier loaded = load_classifier(path);
  util::Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto query = hv::BitVector::random(777, rng);
    ASSERT_EQ(loaded.predict(query), original.predict(query));
  }
  std::remove(path.c_str());
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW((void)load_classifier(temp_path("does_not_exist.lhdc")),
               std::runtime_error);
}

TEST(ModelIo, BadMagicThrows) {
  const auto path = temp_path("bad_magic.lhdc");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPExxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW((void)load_classifier(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, TruncatedPayloadThrows) {
  const auto path = temp_path("truncated.lhdc");
  save_classifier(make_classifier(3, 512, 5), path);
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW((void)load_classifier(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      save_classifier(make_classifier(1, 64, 6), "/nonexistent/m.lhdc"),
      std::runtime_error);
}

}  // namespace
}  // namespace lehdc::hdc
