#include "hdc/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"

namespace lehdc::hdc {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

BinaryClassifier make_classifier(std::size_t classes, std::size_t dim,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hv::BitVector> hvs;
  for (std::size_t k = 0; k < classes; ++k) {
    hvs.push_back(hv::BitVector::random(dim, rng));
  }
  return BinaryClassifier(std::move(hvs));
}

TEST(ModelIo, RoundTripPreservesModel) {
  const auto path = temp_path("roundtrip.lhdc");
  const BinaryClassifier original = make_classifier(5, 1000, 1);
  save_classifier(original, path);
  const BinaryClassifier loaded = load_classifier(path);
  ASSERT_EQ(loaded.class_count(), 5u);
  ASSERT_EQ(loaded.dim(), 1000u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(loaded.class_hypervector(k), original.class_hypervector(k));
  }
  std::remove(path.c_str());
}

TEST(ModelIo, RoundTripAtWordBoundary) {
  const auto path = temp_path("boundary.lhdc");
  const BinaryClassifier original = make_classifier(2, 64, 2);
  save_classifier(original, path);
  const BinaryClassifier loaded = load_classifier(path);
  EXPECT_EQ(loaded.class_hypervector(1), original.class_hypervector(1));
  std::remove(path.c_str());
}

TEST(ModelIo, LoadedModelPredictsIdentically) {
  const auto path = temp_path("predict.lhdc");
  const BinaryClassifier original = make_classifier(4, 777, 3);
  save_classifier(original, path);
  const BinaryClassifier loaded = load_classifier(path);
  util::Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto query = hv::BitVector::random(777, rng);
    ASSERT_EQ(loaded.predict(query), original.predict(query));
  }
  std::remove(path.c_str());
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW((void)load_classifier(temp_path("does_not_exist.lhdc")),
               std::runtime_error);
}

TEST(ModelIo, BadMagicThrows) {
  const auto path = temp_path("bad_magic.lhdc");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPExxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW((void)load_classifier(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, TruncatedPayloadThrows) {
  const auto path = temp_path("truncated.lhdc");
  save_classifier(make_classifier(3, 512, 5), path);
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW((void)load_classifier(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      save_classifier(make_classifier(1, 64, 6), "/nonexistent/m.lhdc"),
      std::runtime_error);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

TEST(ModelIo, UnsupportedVersionThrows) {
  const auto path = temp_path("future_version.lhdc");
  save_classifier(make_classifier(2, 128, 7), path);
  std::string contents = slurp(path);
  const std::uint32_t future = 99;
  std::memcpy(contents.data() + 4, &future, sizeof(future));
  spit(path, contents);
  try {
    (void)load_classifier(path);
    FAIL() << "version 99 file loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ModelIo, SingleFlippedPayloadBitThrowsChecksumError) {
  const auto path = temp_path("bitflip.lhdc");
  const BinaryClassifier original = make_classifier(3, 500, 8);
  save_classifier(original, path);
  const std::string pristine = slurp(path);
  // Flip one bit at several positions inside the framed payload (past
  // magic + version + size field) and in the trailing CRC itself.
  const std::size_t payload_start = 4 + 4 + 8;
  for (const std::size_t byte :
       {payload_start, payload_start + 17, pristine.size() / 2,
        pristine.size() - 1}) {
    std::string corrupted = pristine;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x04);
    spit(path, corrupted);
    EXPECT_THROW((void)load_classifier(path), std::runtime_error)
        << "bit flip at byte " << byte << " went undetected";
  }
  // The pristine bytes still load, so the corruption (not the harness)
  // caused the failures above.
  spit(path, pristine);
  const BinaryClassifier loaded = load_classifier(path);
  EXPECT_EQ(loaded.class_hypervector(0), original.class_hypervector(0));
  std::remove(path.c_str());
}

TEST(ModelIo, CrcValidButInconsistentHeaderThrows) {
  // A v2 file whose checksum is valid but whose header declares an absurd
  // dimension must be rejected before any allocation is attempted.
  const auto path = temp_path("absurd_dim.lhdc");
  util::PayloadWriter payload;
  payload.pod<std::uint64_t>(std::uint64_t{1} << 62);  // dim
  payload.pod<std::uint64_t>(3);                       // class_count
  {
    std::ofstream out(path, std::ios::binary);
    out << "LHDC";
    const std::uint32_t version = 2;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    util::write_framed_payload(out, payload.str());
  }
  EXPECT_THROW((void)load_classifier(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, LegacyV1FileStillLoads) {
  // Hand-write the pre-checksum v1 layout: magic | u32 1 | u64 dim |
  // u64 classes | packed words. Old artifacts must keep loading.
  const auto path = temp_path("legacy.lhdc");
  const BinaryClassifier original = make_classifier(3, 200, 9);
  {
    std::ofstream out(path, std::ios::binary);
    out << "LHDC";
    const std::uint32_t version = 1;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint64_t dim = original.dim();
    const std::uint64_t classes = original.class_count();
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(&classes), sizeof(classes));
    for (std::size_t k = 0; k < original.class_count(); ++k) {
      const auto words = original.class_hypervector(k).words();
      out.write(reinterpret_cast<const char*>(words.data()),
                static_cast<std::streamsize>(words.size() *
                                             sizeof(words[0])));
    }
  }
  const BinaryClassifier loaded = load_classifier(path);
  ASSERT_EQ(loaded.class_count(), original.class_count());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (std::size_t k = 0; k < original.class_count(); ++k) {
    EXPECT_EQ(loaded.class_hypervector(k), original.class_hypervector(k));
  }
  std::remove(path.c_str());
}

TEST(ModelIo, SaveLeavesNoTemporaryFile) {
  const auto path = temp_path("no_temp.lhdc");
  save_classifier(make_classifier(2, 256, 10), path);
  std::ifstream temp(path + ".tmp.lehdc", std::ios::binary);
  EXPECT_FALSE(temp.good());
  std::remove(path.c_str());
}

EnsembleClassifier make_ensemble(std::size_t classes, std::size_t per_class,
                                 std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<hv::BitVector>> models(classes);
  for (auto& class_models : models) {
    for (std::size_t m = 0; m < per_class; ++m) {
      class_models.push_back(hv::BitVector::random(dim, rng));
    }
  }
  return EnsembleClassifier(std::move(models));
}

TEST(EnsembleIo, RoundTripPreservesModels) {
  const auto path = temp_path("roundtrip.lhde");
  const EnsembleClassifier original = make_ensemble(3, 4, 300, 11);
  save_ensemble(original, path);
  const EnsembleClassifier loaded = load_ensemble(path);
  ASSERT_EQ(loaded.class_count(), 3u);
  ASSERT_EQ(loaded.models_per_class(), 4u);
  EXPECT_EQ(loaded.models(), original.models());
  std::remove(path.c_str());
}

TEST(EnsembleIo, SingleFlippedPayloadBitThrows) {
  const auto path = temp_path("bitflip.lhde");
  save_ensemble(make_ensemble(2, 2, 256, 12), path);
  std::string contents = slurp(path);
  contents[contents.size() / 2] =
      static_cast<char>(contents[contents.size() / 2] ^ 0x01);
  spit(path, contents);
  EXPECT_THROW((void)load_ensemble(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EnsembleIo, LegacyV1FileStillLoads) {
  const auto path = temp_path("legacy.lhde");
  const EnsembleClassifier original = make_ensemble(2, 3, 128, 13);
  {
    std::ofstream out(path, std::ios::binary);
    out << "LHDE";
    const std::uint32_t version = 1;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint64_t dim = 128;
    const std::uint64_t classes = 2;
    const std::uint64_t per_class = 3;
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(&classes), sizeof(classes));
    out.write(reinterpret_cast<const char*>(&per_class), sizeof(per_class));
    for (const auto& class_models : original.models()) {
      for (const auto& model : class_models) {
        const auto words = model.words();
        out.write(reinterpret_cast<const char*>(words.data()),
                  static_cast<std::streamsize>(words.size() *
                                               sizeof(words[0])));
      }
    }
  }
  const EnsembleClassifier loaded = load_ensemble(path);
  EXPECT_EQ(loaded.models(), original.models());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lehdc::hdc
