// OnlineHdcLearner: streaming centroid / perceptron updates over encoded
// samples. Covers counting semantics, snapshot parity, the perceptron
// warm-up and mistake-driven rules, precondition checks, drift recovery
// (prototype shift mid-stream), warm-up edge cases, tie-break determinism
// and the checksummed LHON save/load resume path.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/online.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"
#include "util/rng.hpp"

namespace lehdc {
namespace {

constexpr std::size_t kDim = 512;

core::OnlineConfig config_for(core::OnlineMode mode) {
  core::OnlineConfig config;
  config.dim = kDim;
  config.class_count = 3;
  config.mode = mode;
  config.seed = 11;
  return config;
}

/// A stream where each class clusters around its own prototype: the
/// prototype with a few bits flipped per sample.
hdc::EncodedDataset clustered_stream(std::size_t per_class,
                                     std::size_t class_count,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hv::BitVector> prototypes;
  for (std::size_t k = 0; k < class_count; ++k) {
    prototypes.push_back(hv::BitVector::random(kDim, rng));
  }
  hdc::EncodedDataset stream(kDim, class_count);
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::size_t k = 0; k < class_count; ++k) {
      hv::BitVector sample = prototypes[k];
      sample.flip_random(kDim / 16, rng);
      stream.add(std::move(sample), static_cast<int>(k));
    }
  }
  return stream;
}

TEST(OnlineLearner, CtorValidatesConfig) {
  auto bad_dim = config_for(core::OnlineMode::kCentroid);
  bad_dim.dim = 0;
  EXPECT_THROW(core::OnlineHdcLearner{bad_dim}, std::invalid_argument);

  auto one_class = config_for(core::OnlineMode::kCentroid);
  one_class.class_count = 1;
  EXPECT_THROW(core::OnlineHdcLearner{one_class}, std::invalid_argument);

  auto bad_alpha = config_for(core::OnlineMode::kPerceptron);
  bad_alpha.alpha = 0;
  EXPECT_THROW(core::OnlineHdcLearner{bad_alpha}, std::invalid_argument);
}

TEST(OnlineLearner, ObservePreconditions) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  util::Rng rng(3);
  const auto wrong_dim = hv::BitVector::random(kDim / 2, rng);
  const auto sample = hv::BitVector::random(kDim, rng);
  EXPECT_THROW(learner.observe(wrong_dim, 0), std::invalid_argument);
  EXPECT_THROW(learner.observe(sample, -1), std::invalid_argument);
  EXPECT_THROW(learner.observe(sample, 3), std::invalid_argument);
  EXPECT_THROW((void)learner.predict(wrong_dim), std::invalid_argument);
  EXPECT_EQ(learner.observed(), 0u);  // rejected samples are not consumed
}

TEST(OnlineLearner, CentroidCountsEverySampleAsAnUpdate) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  const auto stream = clustered_stream(10, 3, 5);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  EXPECT_EQ(learner.observed(), stream.size());
  EXPECT_EQ(learner.updates(), stream.size());
}

TEST(OnlineLearner, CentroidLearnsClusteredStream) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  const auto stream = clustered_stream(20, 3, 7);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  // Tight clusters around distinct random prototypes: the centroid model
  // must separate them essentially perfectly.
  EXPECT_GE(learner.accuracy(stream), 0.95);
}

TEST(OnlineLearner, SnapshotMatchesLivePredictions) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kPerceptron));
  const auto stream = clustered_stream(15, 3, 9);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  const hdc::BinaryClassifier deployed = learner.snapshot();
  ASSERT_EQ(deployed.class_count(), learner.class_count());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(deployed.predict(stream.hypervector(i)),
              learner.predict(stream.hypervector(i)))
        << "i=" << i;
  }
}

TEST(OnlineLearner, PerceptronWarmupAlwaysUpdates) {
  auto config = config_for(core::OnlineMode::kPerceptron);
  config.warmup_per_class = 3;
  core::OnlineHdcLearner learner(config);
  const auto stream = clustered_stream(3, 3, 13);  // exactly the warm-up
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  // Every sample is inside some class's warm-up window, so every one
  // bundles in regardless of what the half-built model would predict.
  EXPECT_EQ(learner.updates(), stream.size());
}

TEST(OnlineLearner, PerceptronSkipsCorrectlyClassifiedSamples) {
  auto config = config_for(core::OnlineMode::kPerceptron);
  config.warmup_per_class = 1;
  core::OnlineHdcLearner learner(config);
  const auto stream = clustered_stream(25, 3, 17);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  EXPECT_EQ(learner.observed(), stream.size());
  // Clusters are nearly separable: after warm-up the model predicts most
  // samples correctly, so mistake-driven updates must be a strict subset.
  EXPECT_LT(learner.updates(), learner.observed());
  EXPECT_GE(learner.updates(), 3u);  // at least the warm-up happened

  // Re-observing a sample the model already gets right is a no-op.
  const std::size_t before = learner.updates();
  const std::size_t i = 0;
  ASSERT_EQ(learner.predict(stream.hypervector(i)), stream.label(i));
  learner.observe(stream.hypervector(i), stream.label(i));
  EXPECT_EQ(learner.updates(), before);
}

TEST(OnlineLearner, UnseenClassesActAsAllPositive) {
  // Before any observation every accumulator is zero, so sgn(0) resolves
  // every coordinate via the tie-break and all classes score identically:
  // argmax must fall back to class 0.
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  util::Rng rng(19);
  EXPECT_EQ(learner.predict(hv::BitVector::random(kDim, rng)), 0);
}

TEST(OnlineLearner, AccuracyOfEmptyDatasetIsZero) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  const hdc::EncodedDataset empty(kDim, 3);
  EXPECT_EQ(learner.accuracy(empty), 0.0);
}

// ------------------------------------------------------ drift recovery --

/// Class prototypes drawn from `rng`, one per class.
std::vector<hv::BitVector> draw_prototypes(std::size_t class_count,
                                           util::Rng& rng) {
  std::vector<hv::BitVector> prototypes;
  for (std::size_t k = 0; k < class_count; ++k) {
    prototypes.push_back(hv::BitVector::random(kDim, rng));
  }
  return prototypes;
}

/// A stream clustered around the given prototypes (round-robin labels).
hdc::EncodedDataset stream_around(const std::vector<hv::BitVector>& prototypes,
                                  std::size_t per_class, util::Rng& rng) {
  hdc::EncodedDataset stream(kDim, prototypes.size());
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::size_t k = 0; k < prototypes.size(); ++k) {
      hv::BitVector sample = prototypes[k];
      sample.flip_random(kDim / 16, rng);
      stream.add(std::move(sample), static_cast<int>(k));
    }
  }
  return stream;
}

void feed(core::OnlineHdcLearner& learner, const hdc::EncodedDataset& stream) {
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
}

TEST(OnlineDrift, PerceptronRecoversFromPrototypeShiftWhileCentroidLags) {
  // Mid-stream concept drift, worst case: the class prototypes ROTATE
  // (class k now emits what used to be class k+1's pattern), so the
  // pre-drift model is 100% confidently wrong — a re-draw can land
  // accidentally aligned, a rotation cannot. The mistake-driven
  // perceptron both adds the new pattern and *subtracts* it from the
  // class it was confused with, so a handful of mistakes re-aim the
  // discriminative coordinates; the centroid only ever piles on, and a
  // post-drift budget half the pre-drift mass leaves it anchored to the
  // stale prototypes.
  util::Rng rng(23);
  const auto before = draw_prototypes(3, rng);
  const std::vector<hv::BitVector> after = {before[1], before[2],
                                            before[0]};
  const auto pre_stream = stream_around(before, 40, rng);
  const auto drift_stream = stream_around(after, 20, rng);
  const auto drifted_eval = stream_around(after, 20, rng);  // held out

  core::OnlineHdcLearner perceptron(
      config_for(core::OnlineMode::kPerceptron));
  core::OnlineHdcLearner centroid(config_for(core::OnlineMode::kCentroid));
  feed(perceptron, pre_stream);
  feed(centroid, pre_stream);
  ASSERT_GE(perceptron.accuracy(pre_stream), 0.95);
  ASSERT_GE(centroid.accuracy(pre_stream), 0.95);
  // The drift is real: the rotated labels gut the pre-drift models.
  ASSERT_LE(perceptron.accuracy(drifted_eval), 0.2);
  ASSERT_LE(centroid.accuracy(drifted_eval), 0.2);

  feed(perceptron, drift_stream);
  feed(centroid, drift_stream);
  const double recovered = perceptron.accuracy(drifted_eval);
  const double lagging = centroid.accuracy(drifted_eval);
  EXPECT_GE(recovered, 0.9) << "perceptron failed to recover from drift";
  EXPECT_GE(recovered, lagging + 0.5)
      << "perceptron=" << recovered << " centroid=" << lagging
      << " — the mistake-driven rule should outpace pure bundling";
}

// ------------------------------------------------- warm-up edge cases --

TEST(OnlineLearner, WarmupZeroIsMistakeDrivenFromTheFirstSample) {
  auto config = config_for(core::OnlineMode::kPerceptron);
  config.warmup_per_class = 0;
  core::OnlineHdcLearner learner(config);
  util::Rng rng(29);
  const auto sample = hv::BitVector::random(kDim, rng);
  // A cold model predicts class 0 on everything (all-(+1) fallback), so a
  // class-0 label is "correct" and must NOT bundle in...
  ASSERT_EQ(learner.predict(sample), 0);
  learner.observe(sample, 0);
  EXPECT_EQ(learner.observed(), 1u);
  EXPECT_EQ(learner.updates(), 0u);
  // ...while any other label is a mistake and must update immediately.
  learner.observe(sample, 1);
  EXPECT_EQ(learner.updates(), 1u);
}

TEST(OnlineLearner, WarmupLongerThanStreamBundlesEverySample) {
  auto config = config_for(core::OnlineMode::kPerceptron);
  const auto stream = clustered_stream(5, 3, 31);
  config.warmup_per_class = stream.size() + 1;  // never leaves warm-up
  core::OnlineHdcLearner learner(config);
  feed(learner, stream);
  // Inside the warm-up window the perceptron degenerates to the centroid
  // rule: every observation is an update, right up to the stream's end.
  EXPECT_EQ(learner.updates(), stream.size());
  EXPECT_EQ(learner.observed(), stream.size());
}

// ------------------------------------------- tie-break determinism --

TEST(OnlineLearner, TieBreakIsDeterministicAcrossSeeds) {
  // sgn(0) coordinates resolve via a seeded tie-break hypervector. For
  // any seed, two learners built from the same config and fed the same
  // stream must agree on every prediction — including queries that hit
  // zero accumulators — and stay deterministic across repeat runs.
  const auto stream = clustered_stream(8, 3, 37);
  util::Rng query_rng(41);
  std::vector<hv::BitVector> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(hv::BitVector::random(kDim, query_rng));
  }
  for (const std::uint64_t seed : {1ull, 2ull, 977ull}) {
    auto config = config_for(core::OnlineMode::kPerceptron);
    config.seed = seed;
    core::OnlineHdcLearner a(config);
    core::OnlineHdcLearner b(config);
    // Cold models: every accumulator is zero, so predictions are pure
    // tie-break — they must already agree.
    for (const auto& query : queries) {
      ASSERT_EQ(a.predict(query), b.predict(query)) << "seed=" << seed;
    }
    feed(a, stream);
    feed(b, stream);
    EXPECT_EQ(a.updates(), b.updates()) << "seed=" << seed;
    for (const auto& query : queries) {
      ASSERT_EQ(a.predict(query), b.predict(query)) << "seed=" << seed;
    }
  }
}

// ------------------------------------------------ LHON save / load --

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(OnlineLearner, SaveLoadResumesStreamBitIdentically) {
  // Kill-resume contract: save mid-stream, load, finish the stream on
  // both the original and the resumed learner — counters, predictions
  // and re-saved bytes must all be identical.
  const auto stream = clustered_stream(12, 3, 43);
  const std::size_t half = stream.size() / 2;
  auto config = config_for(core::OnlineMode::kPerceptron);
  config.warmup_per_class = 2;
  core::OnlineHdcLearner original(config);
  for (std::size_t i = 0; i < half; ++i) {
    original.observe(stream.hypervector(i), stream.label(i));
  }
  const auto path = temp_path("resume.lhon");
  original.save(path);
  core::OnlineHdcLearner resumed = core::OnlineHdcLearner::load(path);
  EXPECT_EQ(resumed.observed(), original.observed());
  EXPECT_EQ(resumed.updates(), original.updates());
  EXPECT_EQ(resumed.config().warmup_per_class, 2u);

  for (std::size_t i = half; i < stream.size(); ++i) {
    original.observe(stream.hypervector(i), stream.label(i));
    resumed.observe(stream.hypervector(i), stream.label(i));
  }
  EXPECT_EQ(resumed.observed(), original.observed());
  EXPECT_EQ(resumed.updates(), original.updates());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(resumed.predict(stream.hypervector(i)),
              original.predict(stream.hypervector(i)))
        << "i=" << i;
  }
  // Byte-identical artifacts, not just equivalent behavior.
  const auto original_path = temp_path("resume_original.lhon");
  const auto resumed_path = temp_path("resume_resumed.lhon");
  original.save(original_path);
  resumed.save(resumed_path);
  EXPECT_EQ(file_bytes(original_path), file_bytes(resumed_path));
}

TEST(OnlineLearner, LoadRejectsCorruptedFile) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  const auto stream = clustered_stream(4, 3, 47);
  feed(learner, stream);
  const auto path = temp_path("corrupt.lhon");
  learner.save(path);
  std::string bytes = file_bytes(path);
  ASSERT_GT(bytes.size(), 32u);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one stored bit
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)core::OnlineHdcLearner::load(path), std::runtime_error);
}

}  // namespace
}  // namespace lehdc
