// OnlineHdcLearner: streaming centroid / perceptron updates over encoded
// samples. Covers counting semantics, snapshot parity, the perceptron
// warm-up and mistake-driven rules, and precondition checks.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/online.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"
#include "util/rng.hpp"

namespace lehdc {
namespace {

constexpr std::size_t kDim = 512;

core::OnlineConfig config_for(core::OnlineMode mode) {
  core::OnlineConfig config;
  config.dim = kDim;
  config.class_count = 3;
  config.mode = mode;
  config.seed = 11;
  return config;
}

/// A stream where each class clusters around its own prototype: the
/// prototype with a few bits flipped per sample.
hdc::EncodedDataset clustered_stream(std::size_t per_class,
                                     std::size_t class_count,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hv::BitVector> prototypes;
  for (std::size_t k = 0; k < class_count; ++k) {
    prototypes.push_back(hv::BitVector::random(kDim, rng));
  }
  hdc::EncodedDataset stream(kDim, class_count);
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::size_t k = 0; k < class_count; ++k) {
      hv::BitVector sample = prototypes[k];
      sample.flip_random(kDim / 16, rng);
      stream.add(std::move(sample), static_cast<int>(k));
    }
  }
  return stream;
}

TEST(OnlineLearner, CtorValidatesConfig) {
  auto bad_dim = config_for(core::OnlineMode::kCentroid);
  bad_dim.dim = 0;
  EXPECT_THROW(core::OnlineHdcLearner{bad_dim}, std::invalid_argument);

  auto one_class = config_for(core::OnlineMode::kCentroid);
  one_class.class_count = 1;
  EXPECT_THROW(core::OnlineHdcLearner{one_class}, std::invalid_argument);

  auto bad_alpha = config_for(core::OnlineMode::kPerceptron);
  bad_alpha.alpha = 0;
  EXPECT_THROW(core::OnlineHdcLearner{bad_alpha}, std::invalid_argument);
}

TEST(OnlineLearner, ObservePreconditions) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  util::Rng rng(3);
  const auto wrong_dim = hv::BitVector::random(kDim / 2, rng);
  const auto sample = hv::BitVector::random(kDim, rng);
  EXPECT_THROW(learner.observe(wrong_dim, 0), std::invalid_argument);
  EXPECT_THROW(learner.observe(sample, -1), std::invalid_argument);
  EXPECT_THROW(learner.observe(sample, 3), std::invalid_argument);
  EXPECT_THROW((void)learner.predict(wrong_dim), std::invalid_argument);
  EXPECT_EQ(learner.observed(), 0u);  // rejected samples are not consumed
}

TEST(OnlineLearner, CentroidCountsEverySampleAsAnUpdate) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  const auto stream = clustered_stream(10, 3, 5);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  EXPECT_EQ(learner.observed(), stream.size());
  EXPECT_EQ(learner.updates(), stream.size());
}

TEST(OnlineLearner, CentroidLearnsClusteredStream) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  const auto stream = clustered_stream(20, 3, 7);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  // Tight clusters around distinct random prototypes: the centroid model
  // must separate them essentially perfectly.
  EXPECT_GE(learner.accuracy(stream), 0.95);
}

TEST(OnlineLearner, SnapshotMatchesLivePredictions) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kPerceptron));
  const auto stream = clustered_stream(15, 3, 9);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  const hdc::BinaryClassifier deployed = learner.snapshot();
  ASSERT_EQ(deployed.class_count(), learner.class_count());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(deployed.predict(stream.hypervector(i)),
              learner.predict(stream.hypervector(i)))
        << "i=" << i;
  }
}

TEST(OnlineLearner, PerceptronWarmupAlwaysUpdates) {
  auto config = config_for(core::OnlineMode::kPerceptron);
  config.warmup_per_class = 3;
  core::OnlineHdcLearner learner(config);
  const auto stream = clustered_stream(3, 3, 13);  // exactly the warm-up
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  // Every sample is inside some class's warm-up window, so every one
  // bundles in regardless of what the half-built model would predict.
  EXPECT_EQ(learner.updates(), stream.size());
}

TEST(OnlineLearner, PerceptronSkipsCorrectlyClassifiedSamples) {
  auto config = config_for(core::OnlineMode::kPerceptron);
  config.warmup_per_class = 1;
  core::OnlineHdcLearner learner(config);
  const auto stream = clustered_stream(25, 3, 17);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    learner.observe(stream.hypervector(i), stream.label(i));
  }
  EXPECT_EQ(learner.observed(), stream.size());
  // Clusters are nearly separable: after warm-up the model predicts most
  // samples correctly, so mistake-driven updates must be a strict subset.
  EXPECT_LT(learner.updates(), learner.observed());
  EXPECT_GE(learner.updates(), 3u);  // at least the warm-up happened

  // Re-observing a sample the model already gets right is a no-op.
  const std::size_t before = learner.updates();
  const std::size_t i = 0;
  ASSERT_EQ(learner.predict(stream.hypervector(i)), stream.label(i));
  learner.observe(stream.hypervector(i), stream.label(i));
  EXPECT_EQ(learner.updates(), before);
}

TEST(OnlineLearner, UnseenClassesActAsAllPositive) {
  // Before any observation every accumulator is zero, so sgn(0) resolves
  // every coordinate via the tie-break and all classes score identically:
  // argmax must fall back to class 0.
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  util::Rng rng(19);
  EXPECT_EQ(learner.predict(hv::BitVector::random(kDim, rng)), 0);
}

TEST(OnlineLearner, AccuracyOfEmptyDatasetIsZero) {
  core::OnlineHdcLearner learner(config_for(core::OnlineMode::kCentroid));
  const hdc::EncodedDataset empty(kDim, 3);
  EXPECT_EQ(learner.accuracy(empty), 0.0);
}

}  // namespace
}  // namespace lehdc
