// End-to-end tests for the Pipeline API and the strategy registry.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/synthetic.hpp"

namespace lehdc::core {
namespace {

data::TrainTestSplit easy_split() {
  data::SyntheticConfig cfg;
  cfg.feature_count = 24;
  cfg.class_count = 3;
  cfg.train_count = 120;
  cfg.test_count = 45;
  cfg.prototypes_per_class = 1;
  cfg.class_separation = 1.5;
  cfg.noise_stddev = 0.15;
  cfg.seed = 7;
  return generate_synthetic(cfg);
}

PipelineConfig fast_pipeline(Strategy strategy) {
  PipelineConfig cfg;
  cfg.dim = 512;
  cfg.seed = 3;
  cfg.strategy = strategy;
  cfg.lehdc.epochs = 10;
  cfg.lehdc.batch_size = 16;
  cfg.retrain.iterations = 10;
  cfg.multimodel.models_per_class = 2;
  cfg.multimodel.epochs = 5;
  cfg.adapt.iterations = 10;
  return cfg;
}

TEST(StrategyNames, RoundTripThroughRegistry) {
  for (const auto strategy :
       {Strategy::kBaseline, Strategy::kMultiModel, Strategy::kRetraining,
        Strategy::kEnhancedRetraining, Strategy::kAdaptHd,
        Strategy::kNonBinary, Strategy::kLeHdc}) {
    EXPECT_EQ(strategy_from_name(strategy_name(strategy)), strategy);
  }
}

TEST(StrategyNames, AcceptsAliases) {
  EXPECT_EQ(strategy_from_name("lehdc"), Strategy::kLeHdc);
  EXPECT_EQ(strategy_from_name("multi-model"), Strategy::kMultiModel);
  EXPECT_EQ(strategy_from_name("Multi_Model"), Strategy::kMultiModel);
  EXPECT_EQ(strategy_from_name("retrain"), Strategy::kRetraining);
  EXPECT_THROW((void)strategy_from_name("dnn"), std::invalid_argument);
}

TEST(MakeTrainer, ProducesNamedStrategies) {
  for (const auto strategy :
       {Strategy::kBaseline, Strategy::kMultiModel, Strategy::kRetraining,
        Strategy::kEnhancedRetraining, Strategy::kAdaptHd,
        Strategy::kNonBinary, Strategy::kLeHdc}) {
    const auto trainer = make_trainer(fast_pipeline(strategy));
    ASSERT_NE(trainer, nullptr);
    EXPECT_EQ(trainer->name(), strategy_name(strategy));
  }
}

TEST(Pipeline, FitPredictEvaluate) {
  const auto split = easy_split();
  Pipeline pipeline(fast_pipeline(Strategy::kLeHdc));
  EXPECT_FALSE(pipeline.fitted());
  const FitReport report = pipeline.fit(split.train, &split.test);
  EXPECT_TRUE(pipeline.fitted());
  EXPECT_GT(report.train_accuracy, 0.9);
  EXPECT_GT(report.test_accuracy, 0.9);
  EXPECT_GT(report.timings.encode_seconds, 0.0);
  EXPECT_GT(report.epochs_run, 0u);

  // predict() agrees with evaluate() on the same data.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (pipeline.predict(split.test.sample(i)) == split.test.label(i)) {
      ++correct;
    }
  }
  const double manual =
      static_cast<double>(correct) / static_cast<double>(split.test.size());
  const EvalResult eval = pipeline.evaluate(split.test);
  EXPECT_NEAR(eval.accuracy, manual, 1e-12);
  EXPECT_EQ(eval.samples, split.test.size());
  ASSERT_NE(eval.confusion, nullptr);
  EXPECT_NEAR(eval.confusion->accuracy(), manual, 1e-12);
  EXPECT_NEAR(manual, report.test_accuracy, 1e-12);
}

TEST(Pipeline, EveryStrategyFitsEndToEnd) {
  const auto split = easy_split();
  for (const auto strategy :
       {Strategy::kBaseline, Strategy::kMultiModel, Strategy::kRetraining,
        Strategy::kEnhancedRetraining, Strategy::kAdaptHd,
        Strategy::kNonBinary, Strategy::kLeHdc}) {
    Pipeline pipeline(fast_pipeline(strategy));
    const FitReport report = pipeline.fit(split.train, &split.test);
    EXPECT_GT(report.test_accuracy, 0.8)
        << "strategy " << strategy_name(strategy);
  }
}

TEST(Pipeline, TrajectoryRecordingFlowsThrough) {
  const auto split = easy_split();
  auto cfg = fast_pipeline(Strategy::kLeHdc);
  cfg.lehdc.epochs = 5;
  Pipeline pipeline(cfg);
  const FitReport report =
      pipeline.fit(split.train, &split.test, train::record_trajectory());
  EXPECT_EQ(report.trajectory.size(), 5u);
  EXPECT_GT(report.trajectory.back().test_accuracy, 0.0);
}

TEST(Pipeline, FitWithoutTestSet) {
  const auto split = easy_split();
  Pipeline pipeline(fast_pipeline(Strategy::kBaseline));
  const FitReport report = pipeline.fit(split.train);
  EXPECT_GT(report.train_accuracy, 0.9);
  EXPECT_EQ(report.test_accuracy, 0.0);
}

TEST(Pipeline, PredictBeforeFitThrows) {
  Pipeline pipeline(fast_pipeline(Strategy::kBaseline));
  const std::vector<float> sample(24, 0.5f);
  EXPECT_THROW((void)pipeline.predict(sample), std::invalid_argument);
  EXPECT_THROW((void)pipeline.model(), std::invalid_argument);
  EXPECT_THROW((void)pipeline.encoder(), std::invalid_argument);
}

TEST(Pipeline, RejectsSchemaMismatch) {
  const auto split = easy_split();
  Pipeline pipeline(fast_pipeline(Strategy::kBaseline));
  const data::Dataset wrong(25, 3);
  EXPECT_THROW((void)pipeline.fit(split.train, &wrong),
               std::invalid_argument);
}

TEST(Pipeline, RejectsEmptyTrainingSet) {
  Pipeline pipeline(fast_pipeline(Strategy::kBaseline));
  const data::Dataset empty(24, 3);
  EXPECT_THROW((void)pipeline.fit(empty), std::invalid_argument);
}

TEST(Pipeline, ValidatesConfig) {
  auto cfg = fast_pipeline(Strategy::kBaseline);
  cfg.dim = 0;
  EXPECT_THROW(Pipeline{cfg}, std::invalid_argument);
  cfg = fast_pipeline(Strategy::kBaseline);
  cfg.levels = 1;
  EXPECT_THROW(Pipeline{cfg}, std::invalid_argument);
}

TEST(Pipeline, EncoderDimsMatchConfig) {
  const auto split = easy_split();
  Pipeline pipeline(fast_pipeline(Strategy::kBaseline));
  (void)pipeline.fit(split.train);
  EXPECT_EQ(pipeline.encoder().dim(), 512u);
  EXPECT_EQ(pipeline.encoder().feature_count(), 24u);
}

TEST(Pipeline, LeHdcSharesEncoderWithBaseline) {
  // Same seed → identical item memories → LeHDC's accuracy gain comes from
  // training alone (the paper's apples-to-apples protocol).
  const auto split = easy_split();
  Pipeline baseline(fast_pipeline(Strategy::kBaseline));
  Pipeline lehdc(fast_pipeline(Strategy::kLeHdc));
  (void)baseline.fit(split.train);
  (void)lehdc.fit(split.train);
  const std::vector<float> sample(split.train.sample(0).begin(),
                                  split.train.sample(0).end());
  EXPECT_EQ(
      dynamic_cast<const hdc::RecordEncoder&>(baseline.encoder())
          .encode(sample),
      dynamic_cast<const hdc::RecordEncoder&>(lehdc.encoder())
          .encode(sample));
}

}  // namespace
}  // namespace lehdc::core
