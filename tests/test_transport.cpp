// Transport layer (src/serve/framing, src/serve/transport/): incremental
// frame codec bit-identity under arbitrary byte splits, the hostile-input
// fuzz corpus from `lehdc_serve genframes --corrupt`, Connection's
// pause/shed/ordering semantics, the transport chaos scenarios, and
// byte-for-byte parity between the epoll TCP path and the AF_UNIX path
// for the same request stream. Everything runs on a FakeClock with a
// manual-dispatch server — one thread is client, server and event loop.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/transport.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "serve/clock.hpp"
#include "serve/framing.hpp"
#include "serve/online.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/transport/connection.hpp"
#include "serve/transport/event_loop.hpp"
#include "serve/transport/socket.hpp"
#include "util/rng.hpp"

namespace lehdc {
namespace {

constexpr std::size_t kFeatures = 6;

serve::WireRequest make_request(std::uint64_t id, int version,
                                const std::string& tenant = "acme",
                                std::uint64_t budget_us = 0) {
  serve::WireRequest request;
  request.id = id;
  request.version = version;
  request.tenant = tenant;
  request.deadline_budget_us = budget_us;
  request.features.assign(kFeatures, 0.25f * static_cast<float>(id % 4));
  return request;
}

/// A stream of mixed v1/v2 frames with varied tenants and budgets.
std::string frame_stream(std::size_t count) {
  std::string bytes;
  for (std::size_t i = 0; i < count; ++i) {
    bytes += serve::encode_request(make_request(
        i + 1, static_cast<int>(i % 2) + 1, i % 3 == 0 ? "globex" : "acme",
        i % 4 == 0 ? 0 : 1000 * i));
  }
  return bytes;
}

/// Decodes `bytes` fed in `chunk`-sized pieces; returns each frame as
/// "version:payload" so streams compare bit-exactly.
std::vector<std::string> decode_chunked(const std::string& bytes,
                                        std::size_t chunk) {
  serve::FrameDecoder decoder = serve::make_request_decoder("test");
  std::vector<std::string> frames;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    decoder.feed(std::string_view(bytes).substr(off, chunk));
    serve::FrameDecoder::Frame frame;
    while (decoder.next(&frame)) {
      frames.push_back(std::to_string(frame.version) + ":" +
                       std::string(frame.payload));
    }
  }
  return frames;
}

// ----------------------------------------------------------------- codec --

TEST(Framing, ByteAtATimeMatchesOneShot) {
  const std::string bytes = frame_stream(13);
  const auto one_shot = decode_chunked(bytes, bytes.size());
  ASSERT_EQ(one_shot.size(), 13u);
  EXPECT_EQ(decode_chunked(bytes, 1), one_shot);
}

TEST(Framing, RandomSplitsMatchOneShot) {
  const std::string bytes = frame_stream(9);
  const auto one_shot = decode_chunked(bytes, bytes.size());
  util::Rng rng(7);
  for (int trial = 0; trial < 32; ++trial) {
    serve::FrameDecoder decoder = serve::make_request_decoder("test");
    std::vector<std::string> frames;
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t n =
          1 + rng.next_below(std::min<std::size_t>(97, bytes.size() - off));
      decoder.feed(std::string_view(bytes).substr(off, n));
      off += n;
      serve::FrameDecoder::Frame frame;
      while (decoder.next(&frame)) {
        frames.push_back(std::to_string(frame.version) + ":" +
                         std::string(frame.payload));
      }
    }
    EXPECT_EQ(frames, one_shot) << "split trial " << trial;
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(Framing, BytesNeededDrivesExactReads) {
  const std::string bytes = frame_stream(3);
  serve::FrameDecoder decoder = serve::make_request_decoder("test");
  std::size_t off = 0;
  std::size_t frames = 0;
  while (off < bytes.size()) {
    const std::size_t want = decoder.bytes_needed();
    ASSERT_GT(want, 0u);
    ASSERT_LE(off + want, bytes.size());
    decoder.feed(std::string_view(bytes).substr(off, want));
    off += want;
    serve::FrameDecoder::Frame frame;
    while (decoder.next(&frame)) {
      ++frames;
    }
  }
  EXPECT_EQ(frames, 3u);
}

TEST(Framing, EncoderResumesShortWrites) {
  serve::FrameEncoder encoder;
  const std::string a = serve::encode_request(make_request(1, 2));
  const std::string b = serve::encode_request(make_request(2, 1));
  encoder.push(a);
  encoder.push(b);
  EXPECT_EQ(encoder.backlog_bytes(), a.size() + b.size());

  // Take 1, 2, 4, ... bytes per "write": frames come out in order, never
  // interleaved, and reassemble bit-exactly.
  std::string written;
  std::size_t take = 1;
  while (!encoder.empty()) {
    const std::string_view pending = encoder.pending();
    ASSERT_FALSE(pending.empty());
    const std::size_t n = std::min(take, pending.size());
    written.append(pending.substr(0, n));
    encoder.consume(n);
    take *= 2;
  }
  EXPECT_EQ(written, a + b);
  EXPECT_TRUE(encoder.pending().empty());
}

// ------------------------------------------------------------------ fuzz --

/// Mirror of `lehdc_serve genframes --corrupt` (tools/lehdc_serve.cpp):
/// the two sides must stay in sync so the on-disk corpus and this
/// in-process fuzz exercise the same hostile shapes.
std::string corrupt_frame(const serve::WireRequest& request,
                          std::size_t kind) {
  std::string frame = serve::encode_request(request);
  switch (kind % 8) {
    case 0:
      frame[0] = 'X';
      break;
    case 1:
      frame.resize(frame.size() - std::min<std::size_t>(frame.size() / 2,
                                                        frame.size() - 9));
      break;
    case 2: {
      const std::uint32_t size = serve::kMaxPayloadBytes + 1;
      std::memcpy(frame.data() + 4, &size, sizeof(size));
      break;
    }
    case 3: {
      const std::size_t offset = 8 + 8 + 8 + 2 + request.tenant.size();
      const std::uint32_t lying = 0x00ffffff;
      std::memcpy(frame.data() + offset, &lying, sizeof(lying));
      break;
    }
    case 4: {
      const std::uint16_t lying = 0xffff;
      std::memcpy(frame.data() + 8 + 8 + 8, &lying, sizeof(lying));
      break;
    }
    case 5:
      frame.resize(3);
      break;
    case 6:
      frame.resize(8);
      break;
    case 7:
      frame.insert(0, "\x00\xffnoise", 7);
      break;
  }
  return frame;
}

enum class FuzzOutcome { kFrames, kTypedError, kIncomplete };

/// Feeds `bytes` in `chunk` pieces through decoder + payload decode and
/// classifies what happened. Any escape other than std::runtime_error is
/// the bug this fuzz exists to catch.
FuzzOutcome classify(const std::string& bytes, std::size_t chunk) {
  serve::FrameDecoder decoder = serve::make_request_decoder("fuzz");
  bool any_frame = false;
  try {
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
      decoder.feed(std::string_view(bytes).substr(off, chunk));
      serve::FrameDecoder::Frame frame;
      while (decoder.next(&frame)) {
        (void)serve::decode_request_payload(frame.payload, frame.version,
                                            "fuzz");
        any_frame = true;
      }
    }
  } catch (const std::runtime_error&) {
    return FuzzOutcome::kTypedError;
  }
  if (decoder.mid_frame()) {
    return FuzzOutcome::kIncomplete;  // EOF mid-frame: truncated stream.
  }
  return any_frame ? FuzzOutcome::kFrames : FuzzOutcome::kIncomplete;
}

TEST(FramingFuzz, CorruptCorpusIsTypedOrIncompleteAtEverySplit) {
  // kinds 0,2,3,4,7 must fail loudly; 1,5,6 are slowloris shapes the
  // decoder must classify as incomplete (mid_frame) without ever serving.
  const FuzzOutcome expected[8] = {
      FuzzOutcome::kTypedError, FuzzOutcome::kIncomplete,
      FuzzOutcome::kTypedError, FuzzOutcome::kTypedError,
      FuzzOutcome::kTypedError, FuzzOutcome::kIncomplete,
      FuzzOutcome::kIncomplete, FuzzOutcome::kTypedError,
  };
  const serve::WireRequest request = make_request(42, 2);
  for (std::size_t kind = 0; kind < 8; ++kind) {
    const std::string bytes = corrupt_frame(request, kind);
    for (std::size_t chunk = 1; chunk <= bytes.size(); ++chunk) {
      EXPECT_EQ(classify(bytes, chunk), expected[kind])
          << "kind " << kind << " chunk " << chunk;
    }
  }
}

TEST(FramingFuzz, ValidFrameAfterGarbageNeverResyncs) {
  // A poisoned stream stays poisoned: after a bad magic the decoder
  // throws and the connection must drop — feeding more must not "work".
  serve::FrameDecoder decoder = serve::make_request_decoder("fuzz");
  decoder.feed(corrupt_frame(make_request(1, 1), 0));
  serve::FrameDecoder::Frame frame;
  EXPECT_THROW((void)decoder.next(&frame), std::runtime_error);
}

// ------------------------------------------------------- connection unit --

struct ServerFixture {
  serve::FakeClock clock{0};
  serve::ModelRegistry registry;
  std::unique_ptr<serve::InferenceServer> server;

  explicit ServerFixture(std::size_t max_batch = 1) {
    data::SyntheticConfig synth;
    synth.feature_count = kFeatures;
    synth.class_count = 3;
    synth.train_count = 60;
    synth.test_count = 6;
    synth.seed = 11;
    auto split = data::generate_synthetic(synth);
    core::PipelineConfig pipeline_config;
    pipeline_config.dim = 256;
    pipeline_config.strategy = core::Strategy::kBaseline;
    pipeline_config.seed = 11;
    auto pipeline = std::make_shared<core::Pipeline>(pipeline_config);
    pipeline->fit(split.train);
    registry.bind("acme", pipeline);
    registry.bind("globex", pipeline);
    serve::ServerConfig config;
    config.default_tenant = "acme";
    config.manual_dispatch = true;
    config.batcher.max_batch = max_batch;
    config.batcher.max_wait_us = 200;
    config.batcher.queue_capacity = 64;
    server = std::make_unique<serve::InferenceServer>(registry, config,
                                                      &clock);
  }
};

/// Pump + drain helper: runs the server, encodes ready responses, drains
/// the write backlog through a response decoder, returns decoded ids.
std::vector<std::uint64_t> drain(serve::transport::Connection& conn,
                                 ServerFixture& fx,
                                 std::vector<serve::Response>* out = nullptr) {
  std::vector<std::uint64_t> ids;
  serve::FrameDecoder decoder = serve::make_response_decoder("drain");
  for (int round = 0; round < 64; ++round) {
    fx.clock.advance_us(300);
    fx.server->run_until_idle();
    conn.pump_responses(fx.clock.now_us());
    while (!conn.pending_write().empty()) {
      const std::string_view pending = conn.pending_write();
      decoder.feed(pending.substr(0, std::min<std::size_t>(5, pending.size())));
      conn.on_written(std::min<std::size_t>(5, pending.size()),
                      fx.clock.now_us());
      serve::FrameDecoder::Frame frame;
      while (decoder.next(&frame)) {
        serve::Response response = serve::decode_response_payload(
            frame.payload, frame.version, "drain");
        ids.push_back(response.id);
        if (out != nullptr) {
          out->push_back(std::move(response));
        }
      }
    }
    if (conn.inflight_count() == 0 && conn.buffered_read_bytes() == 0) {
      break;
    }
  }
  return ids;
}

TEST(Connection, InflightCapPausesDecodingWithoutLoss) {
  ServerFixture fx;
  serve::transport::ConnectionConfig config;
  config.max_inflight = 2;
  serve::transport::Connection conn(1, *fx.server, config, 0);

  ASSERT_TRUE(conn.on_bytes(frame_stream(7), 0));
  // Cap reached: two submitted, the rest parked as buffered bytes.
  EXPECT_EQ(conn.inflight_count(), 2u);
  EXPECT_GT(conn.buffered_read_bytes(), 0u);
  EXPECT_FALSE(conn.wants_read());

  const auto ids = drain(conn, fx);
  ASSERT_EQ(ids.size(), 7u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1);  // strict request order, nothing dropped
  }
  EXPECT_TRUE(conn.wants_read());
}

TEST(Connection, WriteBacklogCapShedsTyped) {
  ServerFixture fx;
  serve::transport::ConnectionConfig config;
  config.write_backlog_max_bytes = 1;  // any pending response trips the cap
  serve::transport::Connection conn(1, *fx.server, config, 0);

  ASSERT_TRUE(conn.on_bytes(serve::encode_request(make_request(1, 2)), 0));
  fx.server->run_until_idle();
  conn.pump_responses(0);  // response #1 lands in the (now-full) backlog
  ASSERT_GE(conn.write_backlog_bytes(), config.write_backlog_max_bytes);
  // Requests 2-4 decode against a saturated backlog: typed sheds.
  std::string rest;
  for (std::uint64_t i = 2; i <= 4; ++i) {
    rest += serve::encode_request(make_request(i, 2));
  }
  ASSERT_TRUE(conn.on_bytes(rest, 0));

  std::vector<serve::Response> responses;
  const auto ids = drain(conn, fx, &responses);
  ASSERT_EQ(ids.size(), 4u);
  std::size_t sheds = 0;
  for (const serve::Response& response : responses) {
    if (!response.ok()) {
      EXPECT_EQ(response.error, serve::Reject::kQueueFull);
      EXPECT_EQ(response.label, -1);
      ++sheds;
    }
  }
  EXPECT_EQ(sheds, conn.sheds());
  EXPECT_GT(sheds, 0u);
  // Order held even with sheds interleaved among served responses.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1);
  }
}

TEST(Connection, EofDrainsThenDone) {
  ServerFixture fx;
  serve::transport::Connection conn(1, *fx.server,
                                    serve::transport::ConnectionConfig{}, 0);
  ASSERT_TRUE(conn.on_bytes(frame_stream(2), 0));
  conn.on_eof();
  EXPECT_FALSE(conn.done());  // still owes two responses
  const auto ids = drain(conn, fx);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(conn.done());
}

TEST(Connection, MalformedBytesFailTheConnection) {
  ServerFixture fx;
  serve::transport::Connection conn(1, *fx.server,
                                    serve::transport::ConnectionConfig{}, 0);
  EXPECT_FALSE(conn.on_bytes("XXXXXXXXXXXX", 0));
  EXPECT_TRUE(conn.failed());
  EXPECT_FALSE(conn.last_error().empty());
  EXPECT_TRUE(conn.done());
  EXPECT_FALSE(conn.wants_read());
}

TEST(Connection, IdleDeadlineTracksActivity) {
  ServerFixture fx;
  serve::transport::ConnectionConfig config;
  config.idle_timeout_us = 1000;
  serve::transport::Connection conn(1, *fx.server, config, 5000);
  EXPECT_EQ(conn.idle_deadline_us(), 6000u);
  EXPECT_FALSE(conn.idle_expired(5999));
  EXPECT_TRUE(conn.idle_expired(6000));
  ASSERT_TRUE(conn.on_bytes(frame_stream(1), 5500));
  EXPECT_EQ(conn.idle_deadline_us(), 6500u);  // progress pushes it out
}

TEST(Connection, FeedbackAcksKeepArrivalOrderAmongResponses) {
  // One connection interleaving LSF2 feedback among request frames: acks
  // must come back exactly where the feedback arrived in the stream —
  // never jumping ahead of an earlier in-flight response, never stalling
  // a later one.
  ServerFixture fx;
  serve::OnlineSidecarConfig online_config;
  online_config.manual = true;
  serve::OnlineSidecar sidecar(fx.registry, online_config, &fx.clock);
  sidecar.enable("acme");
  fx.server->attach_online(&sidecar);
  serve::transport::Connection conn(
      1, *fx.server, serve::transport::ConnectionConfig{}, 0);

  // Serve requests 1..3 fully so their correlations are recorded.
  ASSERT_TRUE(conn.on_bytes(frame_stream(3), 0));
  ASSERT_EQ(drain(conn, fx).size(), 3u);

  // Now interleave: feedback for served id 2 (an "acme" frame in
  // frame_stream), two fresh requests, then feedback for a never-served
  // id.
  serve::WireFeedback good;
  good.id = 2;
  good.tenant = "acme";
  good.label = 0;
  serve::WireFeedback unknown;
  unknown.id = 999;
  unknown.tenant = "acme";
  unknown.label = 0;
  std::string bytes = serve::encode_feedback(good);
  bytes += serve::encode_request(make_request(4, 2));
  bytes += serve::encode_request(make_request(5, 2));
  bytes += serve::encode_feedback(unknown);
  ASSERT_TRUE(conn.on_bytes(bytes, 0));

  std::vector<serve::Response> responses;
  const auto ids = drain(conn, fx, &responses);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 4, 5, 999}));
  // The accepted ack: ok, label -1 (an ack predicts nothing).
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[0].label, -1);
  // Real predictions in between.
  EXPECT_TRUE(responses[1].ok());
  EXPECT_GE(responses[1].label, 0);
  // The unknown-correlation ack is typed, and arrives last.
  EXPECT_EQ(responses[3].error, serve::Reject::kUnknownCorrelation);
  EXPECT_EQ(responses[3].label, -1);
  EXPECT_EQ(sidecar.pump(), 1u);
  EXPECT_EQ(sidecar.feedback_accepted("acme"), 1u);
}

TEST(Connection, FeedbackRacingItsOwnResponseIsUnknownCorrelation) {
  // Feedback that arrives before the request it labels has been
  // dispatched cannot correlate (the record is written at dispatch, after
  // the prediction exists) — it must be a typed reject, not a block or a
  // retroactive match.
  ServerFixture fx;
  serve::OnlineSidecarConfig online_config;
  online_config.manual = true;
  serve::OnlineSidecar sidecar(fx.registry, online_config, &fx.clock);
  sidecar.enable("acme");
  fx.server->attach_online(&sidecar);
  serve::transport::Connection conn(
      1, *fx.server, serve::transport::ConnectionConfig{}, 0);

  serve::WireFeedback feedback;
  feedback.id = 2;
  feedback.tenant = "acme";
  feedback.label = 0;
  std::string bytes = serve::encode_request(make_request(2, 2));
  bytes += serve::encode_feedback(feedback);
  ASSERT_TRUE(conn.on_bytes(bytes, 0));  // no dispatch yet

  std::vector<serve::Response> responses;
  const auto ids = drain(conn, fx, &responses);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 2}));
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[1].error, serve::Reject::kUnknownCorrelation);
  // The correlation recorded at dispatch is still live: feedback after
  // the response is the normal accepted path.
  ASSERT_TRUE(conn.on_bytes(serve::encode_feedback(feedback), 0));
  responses.clear();
  const auto late = drain(conn, fx, &responses);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(sidecar.pump(), 1u);
}

// -------------------------------------------------------- chaos matrix --

TEST(TransportChaos, MatrixHoldsAllInvariants) {
  for (const auto& named : chaos::transport_scenario_matrix()) {
    const auto result =
        chaos::run_transport_scenario(named.configure(0.5), named.invariants);
    EXPECT_TRUE(result.violations.empty())
        << named.name << ": "
        << (result.violations.empty() ? "" : result.violations.front());
    EXPECT_GT(result.responses_ok, 0u) << named.name;
  }
}

TEST(TransportChaos, ChurnDropsConnectionsAndSurvivorsAreWhole) {
  const auto& matrix = chaos::transport_scenario_matrix();
  ASSERT_FALSE(matrix.empty());
  const auto* churn = &matrix[0];
  ASSERT_EQ(churn->name, "connection_churn");
  const auto result =
      chaos::run_transport_scenario(churn->configure(0.5), churn->invariants);
  EXPECT_GT(result.connections_dropped, 0u);
  EXPECT_GT(result.sent_dropped, 0u);
  EXPECT_EQ(result.bleed_errors, 0u);
}

TEST(TransportChaos, SlowReadersForceTypedSheds) {
  const auto& matrix = chaos::transport_scenario_matrix();
  ASSERT_GE(matrix.size(), 2u);
  const auto* slow = &matrix[1];
  ASSERT_EQ(slow->name, "slow_reader_backpressure");
  const auto result =
      chaos::run_transport_scenario(slow->configure(0.5), slow->invariants);
  EXPECT_GT(result.sheds, 0u);
  EXPECT_GT(result.responses_rejected, 0u);
  EXPECT_EQ(result.untyped, 0u);
}

TEST(TransportChaos, ReportsAreByteIdenticalAcrossRuns) {
  for (const auto& named : chaos::transport_scenario_matrix()) {
    const auto a =
        chaos::run_transport_scenario(named.configure(0.25), named.invariants);
    const auto b =
        chaos::run_transport_scenario(named.configure(0.25), named.invariants);
    EXPECT_EQ(a.report.dump(2), b.report.dump(2)) << named.name;
  }
}

// ------------------------------------------------- event loop + parity --

/// Writes all of `bytes` to a non-blocking fd, interleaving poll_once so
/// the server drains what the socket buffer cannot hold.
void pump_write(int fd, const std::string& bytes,
                serve::transport::EventLoop& loop) {
  std::size_t off = 0;
  int spins = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
    loop.poll_once(0);
    ASSERT_LT(++spins, 10000) << "socket write wedged";
  }
}

/// Polls the loop until `count` response frames arrive on `fd`; returns
/// the raw response byte stream.
std::string pump_read(int fd, std::size_t count,
                      serve::transport::EventLoop& loop) {
  std::string bytes;
  serve::FrameDecoder decoder = serve::make_response_decoder("client");
  std::size_t frames = 0;
  char buf[4096];
  int spins = 0;
  while (frames < count) {
    loop.poll_once(0);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes.append(buf, static_cast<std::size_t>(n));
      decoder.feed({buf, static_cast<std::size_t>(n)});
      serve::FrameDecoder::Frame frame;
      while (decoder.next(&frame)) {
        ++frames;
      }
      continue;
    }
    EXPECT_NE(n, 0) << "server closed early";
    if (++spins > 10000) {
      ADD_FAILURE() << "response stream stalled at " << frames << "/" << count;
      break;
    }
  }
  return bytes;
}

/// Round-trips `requests` through a fresh EventLoop server on `fd`,
/// one request at a time (serialized, so ordering and batching are fully
/// deterministic), returning the concatenated response bytes.
std::string round_trip(int fd, const std::vector<serve::WireRequest>& requests,
                       serve::transport::EventLoop& loop) {
  std::string responses;
  for (const serve::WireRequest& request : requests) {
    pump_write(fd, serve::encode_request(request), loop);
    responses += pump_read(fd, 1, loop);
  }
  return responses;
}

TEST(EventLoop, TcpAndUnixServeByteIdenticalStreams) {
  std::vector<serve::WireRequest> requests;
  for (std::uint64_t i = 1; i <= 12; ++i) {
    requests.push_back(make_request(i, static_cast<int>(i % 2) + 1,
                                    i % 3 == 0 ? "globex" : "acme"));
  }

  // The reference stream: the same FakeClock conditions (zero latency,
  // batch of one) submitted directly, encoded at each request's version.
  ServerFixture reference;
  std::string expected;
  for (const serve::WireRequest& request : requests) {
    auto future = reference.server->submit(request.features, 0,
                                           request.tenant, request.id);
    reference.server->run_until_idle();
    expected += serve::encode_response(future.get(), request.version);
  }

  const auto serve_over = [&](bool tcp) {
    ServerFixture fx;
    serve::transport::EventLoopConfig config;
    serve::transport::EventLoop loop(*fx.server, config);
    int client = -1;
    std::string uds_path;
    if (tcp) {
      const int listener = serve::transport::listen_tcp("127.0.0.1", 0, 16);
      const std::uint16_t port = serve::transport::local_port(listener);
      loop.add_listener(listener);
      client = serve::transport::connect_tcp("127.0.0.1", port, true);
    } else {
      uds_path = ::testing::TempDir() + "lehdc_parity.sock";
      loop.add_listener(serve::transport::listen_unix(uds_path, 16));
      client = serve::transport::connect_unix(uds_path, true);
    }
    const std::string bytes = round_trip(client, requests, loop);
    ::close(client);
    if (!uds_path.empty()) {
      ::unlink(uds_path.c_str());
    }
    return bytes;
  };

  const std::string over_tcp = serve_over(true);
  const std::string over_unix = serve_over(false);
  EXPECT_EQ(over_tcp, expected);
  EXPECT_EQ(over_unix, expected);
  EXPECT_EQ(over_tcp, over_unix);
}

TEST(EventLoop, PipelinedBurstKeepsOrderPerConnection) {
  ServerFixture fx(/*max_batch=*/4);
  serve::transport::EventLoopConfig config;
  serve::transport::EventLoop loop(*fx.server, config);
  const int listener = serve::transport::listen_tcp("127.0.0.1", 0, 16);
  const std::uint16_t port = serve::transport::local_port(listener);
  loop.add_listener(listener);
  const int client = serve::transport::connect_tcp("127.0.0.1", port, true);

  std::string burst;
  constexpr std::size_t kCount = 64;
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    burst += serve::encode_request(make_request(i, 2));
  }
  pump_write(client, burst, loop);
  // The batcher's flush window needs virtual time to pass for partial
  // batches; interleave clock and loop.
  std::string bytes;
  serve::FrameDecoder decoder = serve::make_response_decoder("client");
  std::vector<std::uint64_t> ids;
  char buf[4096];
  int spins = 0;
  while (ids.size() < kCount && spins++ < 10000) {
    fx.clock.advance_us(300);
    loop.poll_once(0);
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    if (n <= 0) {
      continue;
    }
    decoder.feed({buf, static_cast<std::size_t>(n)});
    serve::FrameDecoder::Frame frame;
    while (decoder.next(&frame)) {
      ids.push_back(
          serve::decode_response_payload(frame.payload, frame.version, "c")
              .id);
    }
  }
  ASSERT_EQ(ids.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(ids[i], i + 1);
  }
  ::close(client);
}

TEST(EventLoop, IdleConnectionsAreReaped) {
  ServerFixture fx;
  serve::transport::EventLoopConfig config;
  config.connection.idle_timeout_us = 10'000;
  serve::transport::EventLoop loop(*fx.server, config);
  const int listener = serve::transport::listen_tcp("127.0.0.1", 0, 16);
  const std::uint16_t port = serve::transport::local_port(listener);
  loop.add_listener(listener);
  const int client = serve::transport::connect_tcp("127.0.0.1", port, true);

  int spins = 0;
  while (loop.active_connections() == 0 && spins++ < 1000) {
    loop.poll_once(0);
  }
  ASSERT_EQ(loop.active_connections(), 1u);

  fx.clock.advance_us(10'001);
  spins = 0;
  while (loop.active_connections() == 1 && spins++ < 1000) {
    loop.poll_once(0);
  }
  EXPECT_EQ(loop.active_connections(), 0u);
  EXPECT_EQ(loop.closed_total(), 1u);
  ::close(client);
}

TEST(EventLoop, MalformedClientIsDroppedOthersSurvive) {
  ServerFixture fx;
  serve::transport::EventLoopConfig config;
  serve::transport::EventLoop loop(*fx.server, config);
  const int listener = serve::transport::listen_tcp("127.0.0.1", 0, 16);
  const std::uint16_t port = serve::transport::local_port(listener);
  loop.add_listener(listener);

  const int good = serve::transport::connect_tcp("127.0.0.1", port, true);
  const int evil = serve::transport::connect_tcp("127.0.0.1", port, true);
  pump_write(evil, corrupt_frame(make_request(9, 1), 0), loop);

  // The poisoned connection dies; the well-behaved one still serves.
  std::vector<serve::WireRequest> one = {make_request(1, 2)};
  const std::string bytes = round_trip(good, one, loop);
  EXPECT_FALSE(bytes.empty());
  int spins = 0;
  while (loop.active_connections() > 1 && spins++ < 1000) {
    loop.poll_once(0);
  }
  EXPECT_EQ(loop.active_connections(), 1u);
  ::close(good);
  ::close(evil);
}

}  // namespace
}  // namespace lehdc
