// Micro-batching inference server (src/serve/). The MicroBatcher tests
// drive the flush policy with a FakeClock — no sleeps, no wall time: every
// decision is asserted at an exact microsecond. The server tests cover the
// end-to-end contract (bit parity with Pipeline::predict_batch, drain on
// shutdown, typed rejections, hot reload) and stay timing-independent by
// construction: they assert on futures, never on when batches flushed.
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/pipeline_io.hpp"
#include "data/synthetic.hpp"
#include "serve/batcher.hpp"
#include "serve/clock.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace lehdc {
namespace {

serve::PendingRequest make_request(std::uint64_t id,
                                   std::uint64_t deadline_us = 0) {
  serve::PendingRequest request;
  request.id = id;
  request.deadline_us = deadline_us;
  return request;
}

std::vector<std::uint64_t> ids_of(
    const std::vector<serve::PendingRequest>& requests) {
  std::vector<std::uint64_t> ids;
  for (const auto& request : requests) {
    ids.push_back(request.id);
  }
  return ids;
}

serve::BatcherConfig small_config() {
  serve::BatcherConfig config;
  config.max_batch = 4;
  config.max_wait_us = 1000;
  config.queue_capacity = 8;
  return config;
}

// ----------------------------------------------------------- MicroBatcher --

TEST(MicroBatcher, ValidatesConfig) {
  serve::BatcherConfig no_batch = small_config();
  no_batch.max_batch = 0;
  EXPECT_THROW(serve::MicroBatcher{no_batch}, std::invalid_argument);
  serve::BatcherConfig no_queue = small_config();
  no_queue.queue_capacity = 0;
  EXPECT_THROW(serve::MicroBatcher{no_queue}, std::invalid_argument);
}

TEST(MicroBatcher, FlushesOnSize) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  for (std::uint64_t id = 0; id < 3; ++id) {
    ASSERT_EQ(batcher.offer(make_request(id), clock.now_us()),
              serve::Reject::kNone);
    // Three pending, no time elapsed: no flush condition holds yet.
    EXPECT_TRUE(batcher.poll(clock.now_us()).batch.empty());
  }
  ASSERT_EQ(batcher.offer(make_request(3), clock.now_us()),
            serve::Reject::kNone);
  const auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_TRUE(flush.expired.empty());
  EXPECT_EQ(batcher.depth(), 0u);
}

TEST(MicroBatcher, FlushesWhenOldestWaitsMaxWait) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  clock.advance_us(999);
  EXPECT_TRUE(batcher.poll(clock.now_us()).batch.empty());  // 1us early
  clock.advance_us(1);
  const auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0}));
}

TEST(MicroBatcher, TimeFlushIsKeyedToTheOldestRequest) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  clock.advance_us(600);
  ASSERT_EQ(batcher.offer(make_request(1), clock.now_us()),
            serve::Reject::kNone);
  // The late arrival must not reset the wait window of the first request.
  clock.advance_us(400);
  const auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0, 1}));
}

TEST(MicroBatcher, BacklogDrainsInMaxBatchChunks) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());  // max_batch = 4
  for (std::uint64_t id = 0; id < 7; ++id) {
    ASSERT_EQ(batcher.offer(make_request(id), clock.now_us()),
              serve::Reject::kNone);
  }
  const auto first = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(first.batch), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  // Three remain: below max_batch and not yet aged, so the next chunk only
  // releases under force (shutdown) or once the wait elapses.
  EXPECT_TRUE(batcher.poll(clock.now_us()).batch.empty());
  const auto rest = batcher.poll(clock.now_us(), /*force=*/true);
  EXPECT_EQ(ids_of(rest.batch), (std::vector<std::uint64_t>{4, 5, 6}));
  EXPECT_EQ(batcher.depth(), 0u);
}

TEST(MicroBatcher, RejectsWhenFull) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());  // capacity 8
  for (std::uint64_t id = 0; id < 8; ++id) {
    ASSERT_EQ(batcher.offer(make_request(id), clock.now_us()),
              serve::Reject::kNone);
  }
  serve::PendingRequest overflow = make_request(8);
  EXPECT_EQ(batcher.offer(std::move(overflow), clock.now_us()),
            serve::Reject::kQueueFull);
  // Rejected offers are not consumed: the caller still owns the promise.
  overflow.promise.set_value(serve::Response{});
  EXPECT_EQ(batcher.depth(), 8u);
}

TEST(MicroBatcher, ExpiredRequestsAreCulledNotBatched) {
  serve::FakeClock clock;
  clock.set_us(100);
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0, /*deadline_us=*/150),
                          clock.now_us()),
            serve::Reject::kNone);
  ASSERT_EQ(batcher.offer(make_request(1), clock.now_us()),
            serve::Reject::kNone);
  clock.advance_us(50);  // request 0's deadline is now due
  auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.expired), (std::vector<std::uint64_t>{0}));
  EXPECT_TRUE(flush.batch.empty());  // request 1 still has 950us of wait
  clock.advance_us(1000);
  flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{1}));
}

TEST(MicroBatcher, CloseStopsAdmissionAndForceDrains) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  batcher.close();
  EXPECT_TRUE(batcher.closed());
  serve::PendingRequest late = make_request(1);
  EXPECT_EQ(batcher.offer(std::move(late), clock.now_us()),
            serve::Reject::kShuttingDown);
  late.promise.set_value(serve::Response{});
  // The queued request survives close() and drains under force.
  const auto flush = batcher.poll(clock.now_us(), /*force=*/true);
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0}));
}

TEST(MicroBatcher, NextEventTracksFlushAndDeadline) {
  serve::FakeClock clock;
  clock.set_us(500);
  serve::MicroBatcher batcher(small_config());  // max_wait 1000
  EXPECT_EQ(batcher.next_event_us(), serve::MicroBatcher::kNever);
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  EXPECT_EQ(batcher.next_event_us(), 1500u);  // oldest + max_wait
  ASSERT_EQ(batcher.offer(make_request(1, /*deadline_us=*/900),
                          clock.now_us()),
            serve::Reject::kNone);
  EXPECT_EQ(batcher.next_event_us(), 900u);  // the deadline is sooner
}

// -------------------------------------------------------- InferenceServer --

core::Pipeline make_pipeline(std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = 10;
  synth.class_count = 3;
  synth.train_count = 90;
  synth.test_count = 0;
  synth.seed = seed;
  const auto split = data::generate_synthetic(synth);
  core::PipelineConfig config;
  config.dim = 256;
  config.strategy = core::Strategy::kBaseline;
  config.seed = seed;
  core::Pipeline pipeline(config);
  pipeline.fit(split.train);
  return pipeline;
}

data::Dataset make_queries(std::size_t count, std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = 10;
  synth.class_count = 3;
  synth.train_count = count;
  synth.test_count = 0;
  synth.seed = seed;
  return data::generate_synthetic(synth).train;
}

std::vector<float> features_of(const data::Dataset& dataset, std::size_t i) {
  const auto row = dataset.sample(i);
  return {row.begin(), row.end()};
}

TEST(InferenceServer, ResponsesMatchDirectPredictBatchBitForBit) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(21));
  const data::Dataset queries = make_queries(64, 22);
  const std::vector<int> direct =
      registry.get("default")->predict_batch(queries);

  serve::ServerConfig config;
  config.batcher.max_batch = 16;
  serve::InferenceServer server(registry, config);
  std::vector<std::future<serve::Response>> inflight;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    inflight.push_back(server.submit(features_of(queries, i), 0, "",
                                     /*id=*/i));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response response = inflight[i].get();
    ASSERT_TRUE(response.ok()) << serve::reject_name(response.error);
    EXPECT_EQ(response.id, i);
    ASSERT_EQ(response.label, direct[i]) << "i=" << i;
  }
}

TEST(InferenceServer, ShutdownServesTheBacklog) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(23));
  const data::Dataset queries = make_queries(10, 24);
  const std::vector<int> direct =
      registry.get("default")->predict_batch(queries);

  // A flush horizon the test will never reach: nothing dispatches until
  // shutdown force-drains, so the drain path itself is what's exercised.
  serve::ServerConfig config;
  config.batcher.max_batch = 1000;
  config.batcher.max_wait_us = 3600u * 1000u * 1000u;
  serve::InferenceServer server(registry, config);
  std::vector<std::future<serve::Response>> inflight;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    inflight.push_back(server.submit(features_of(queries, i)));
  }
  server.shutdown();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response response = inflight[i].get();
    ASSERT_TRUE(response.ok()) << serve::reject_name(response.error);
    EXPECT_EQ(response.label, direct[i]) << "i=" << i;
  }
  // After shutdown, admission fails with the typed reject, not a hang.
  EXPECT_EQ(server.predict(features_of(queries, 0)).error,
            serve::Reject::kShuttingDown);
}

TEST(InferenceServer, ExpiredDeadlineIsShedWithTypedReject) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(25));
  const data::Dataset queries = make_queries(2, 26);

  serve::FakeClock clock;
  clock.set_us(1000);
  serve::ServerConfig config;
  config.batcher.max_batch = 1000;  // only the deadline can act here
  serve::InferenceServer server(registry, config, &clock);
  // Deadline already in the past at submission: whenever the worker gets
  // to it, the only legal outcome is kDeadlineExceeded.
  const serve::Response expired =
      server.predict(features_of(queries, 0), /*deadline_us=*/500);
  EXPECT_EQ(expired.error, serve::Reject::kDeadlineExceeded);
  // A generous deadline must survive; advancing the fake clock past the
  // batcher's wait window (but far short of the deadline) lets the worker
  // time-flush the request.
  auto alive_future =
      server.submit(features_of(queries, 1), /*deadline_us=*/1000000);
  clock.advance_us(5000);
  const serve::Response alive = alive_future.get();
  EXPECT_TRUE(alive.ok()) << serve::reject_name(alive.error);
}

TEST(InferenceServer, UnknownModelAndBadArityRejectImmediately) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(27));
  serve::InferenceServer server(registry, serve::ServerConfig{});
  const data::Dataset queries = make_queries(1, 28);

  const serve::Response no_model =
      server.predict(features_of(queries, 0), 0, "missing");
  EXPECT_EQ(no_model.error, serve::Reject::kModelNotFound);

  const serve::Response bad_arity = server.predict({1.0f, 2.0f});
  EXPECT_EQ(bad_arity.error, serve::Reject::kBadRequest);
}

TEST(InferenceServer, HotReloadSwapsModelsWithoutRestart) {
  const std::string path_a = ::testing::TempDir() + "/serve_reload_a.lhdp";
  const std::string path_b = ::testing::TempDir() + "/serve_reload_b.lhdp";
  core::save_pipeline(make_pipeline(31), path_a);
  core::save_pipeline(make_pipeline(32), path_b);

  serve::ModelRegistry registry;
  registry.load("default", path_a);
  const auto first = registry.get("default");
  serve::InferenceServer server(registry, serve::ServerConfig{});
  const data::Dataset queries = make_queries(8, 33);

  registry.load("default", path_b);  // hot swap while the server runs
  const auto second = registry.get("default");
  EXPECT_NE(first.get(), second.get());
  const std::vector<int> direct = second->predict_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response response = server.predict(features_of(queries, i));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.label, direct[i]) << "i=" << i;
  }

  // A failed reload must leave the registry serving the current model.
  EXPECT_THROW(registry.load("default", path_a + ".missing"),
               std::exception);
  EXPECT_EQ(registry.get("default").get(), second.get());

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ModelRegistry, AddRequiresFittedPipelineAndGetMisses) {
  serve::ModelRegistry registry;
  core::PipelineConfig config;
  config.dim = 128;
  EXPECT_THROW(registry.add("unfit", core::Pipeline(config)),
               std::invalid_argument);
  EXPECT_EQ(registry.get("absent"), nullptr);
  registry.add("m", make_pipeline(35));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_NE(registry.get("m"), nullptr);
  registry.remove("m");
  EXPECT_EQ(registry.get("m"), nullptr);
}

// --------------------------------------------------------------- protocol --

TEST(Protocol, RequestRoundTripsThroughAStream) {
  serve::WireRequest request;
  request.id = 42;
  request.deadline_budget_us = 2500;
  request.model = "default";
  request.features = {0.5f, -1.25f, 3.0f};

  std::stringstream stream;
  serve::write_request(stream, request);
  serve::WireRequest decoded;
  ASSERT_TRUE(serve::read_request(stream, &decoded, "test"));
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.deadline_budget_us, request.deadline_budget_us);
  EXPECT_EQ(decoded.model, request.model);
  EXPECT_EQ(decoded.features, request.features);
  // Clean EOF at the frame boundary reads as "no more requests".
  EXPECT_FALSE(serve::read_request(stream, &decoded, "test"));
}

TEST(Protocol, ResponseRoundTripsThroughAStream) {
  serve::Response response;
  response.id = 7;
  response.error = serve::Reject::kQueueFull;
  response.label = -1;
  response.batch_size = 16;
  response.latency_seconds = 0.0025;

  std::stringstream stream;
  serve::write_response(stream, response);
  serve::Response decoded;
  ASSERT_TRUE(serve::read_response(stream, &decoded, "test"));
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_EQ(decoded.label, response.label);
  EXPECT_EQ(decoded.batch_size, response.batch_size);
  EXPECT_EQ(decoded.latency_seconds, response.latency_seconds);
}

TEST(Protocol, RejectsBadMagicTruncationAndGarbage) {
  serve::WireRequest request;
  request.features = {1.0f};
  const std::string frame = serve::encode_request(request);

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  std::stringstream wrong(bad_magic);
  serve::WireRequest out;
  EXPECT_THROW((void)serve::read_request(wrong, &out, "test"),
               std::runtime_error);

  // EOF in the middle of a frame is an error, not a silent stop.
  std::stringstream cut(frame.substr(0, frame.size() - 2));
  EXPECT_THROW((void)serve::read_request(cut, &out, "test"),
               std::runtime_error);

  // A feature count pointing past the payload must be caught by the
  // bounds-checked reader before any allocation.
  std::string lying = frame;
  lying[frame.size() - sizeof(float) - 1] = '\x7f';
  std::stringstream hostile(lying);
  EXPECT_THROW((void)serve::read_request(hostile, &out, "test"),
               std::runtime_error);
}

TEST(Protocol, RejectsOutOfRangeStatusByte) {
  serve::Response response;
  std::string frame = serve::encode_response(response);
  // The status byte sits right after the 8-byte header + 8-byte id.
  frame[8 + 8] = '\x77';
  std::stringstream stream(frame);
  serve::Response out;
  EXPECT_THROW((void)serve::read_response(stream, &out, "test"),
               std::runtime_error);
}

}  // namespace
}  // namespace lehdc
