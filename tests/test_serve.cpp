// Micro-batching inference server (src/serve/). The MicroBatcher tests
// drive the flush policy with a FakeClock — no sleeps, no wall time: every
// decision is asserted at an exact microsecond. The server tests cover the
// end-to-end contract (bit parity with Pipeline::predict_batch, drain on
// shutdown, typed rejections, hot reload) and stay timing-independent by
// construction: they assert on futures, never on when batches flushed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/pipeline_io.hpp"
#include "data/synthetic.hpp"
#include "serve/batcher.hpp"
#include "serve/clock.hpp"
#include "serve/online.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace lehdc {
namespace {

serve::PendingRequest make_request(std::uint64_t id,
                                   std::uint64_t deadline_us = 0) {
  serve::PendingRequest request;
  request.id = id;
  request.deadline_us = deadline_us;
  return request;
}

std::vector<std::uint64_t> ids_of(
    const std::vector<serve::PendingRequest>& requests) {
  std::vector<std::uint64_t> ids;
  for (const auto& request : requests) {
    ids.push_back(request.id);
  }
  return ids;
}

serve::BatcherConfig small_config() {
  serve::BatcherConfig config;
  config.max_batch = 4;
  config.max_wait_us = 1000;
  config.queue_capacity = 8;
  return config;
}

// ----------------------------------------------------------- MicroBatcher --

TEST(MicroBatcher, ValidatesConfig) {
  serve::BatcherConfig no_batch = small_config();
  no_batch.max_batch = 0;
  EXPECT_THROW(serve::MicroBatcher{no_batch}, std::invalid_argument);
  serve::BatcherConfig no_queue = small_config();
  no_queue.queue_capacity = 0;
  EXPECT_THROW(serve::MicroBatcher{no_queue}, std::invalid_argument);
}

TEST(MicroBatcher, FlushesOnSize) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  for (std::uint64_t id = 0; id < 3; ++id) {
    ASSERT_EQ(batcher.offer(make_request(id), clock.now_us()),
              serve::Reject::kNone);
    // Three pending, no time elapsed: no flush condition holds yet.
    EXPECT_TRUE(batcher.poll(clock.now_us()).batch.empty());
  }
  ASSERT_EQ(batcher.offer(make_request(3), clock.now_us()),
            serve::Reject::kNone);
  const auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_TRUE(flush.expired.empty());
  EXPECT_EQ(batcher.depth(), 0u);
}

TEST(MicroBatcher, FlushesWhenOldestWaitsMaxWait) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  clock.advance_us(999);
  EXPECT_TRUE(batcher.poll(clock.now_us()).batch.empty());  // 1us early
  clock.advance_us(1);
  const auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0}));
}

TEST(MicroBatcher, TimeFlushIsKeyedToTheOldestRequest) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  clock.advance_us(600);
  ASSERT_EQ(batcher.offer(make_request(1), clock.now_us()),
            serve::Reject::kNone);
  // The late arrival must not reset the wait window of the first request.
  clock.advance_us(400);
  const auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0, 1}));
}

TEST(MicroBatcher, BacklogDrainsInMaxBatchChunks) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());  // max_batch = 4
  for (std::uint64_t id = 0; id < 7; ++id) {
    ASSERT_EQ(batcher.offer(make_request(id), clock.now_us()),
              serve::Reject::kNone);
  }
  const auto first = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(first.batch), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  // Three remain: below max_batch and not yet aged, so the next chunk only
  // releases under force (shutdown) or once the wait elapses.
  EXPECT_TRUE(batcher.poll(clock.now_us()).batch.empty());
  const auto rest = batcher.poll(clock.now_us(), /*force=*/true);
  EXPECT_EQ(ids_of(rest.batch), (std::vector<std::uint64_t>{4, 5, 6}));
  EXPECT_EQ(batcher.depth(), 0u);
}

TEST(MicroBatcher, RejectsWhenFull) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());  // capacity 8
  for (std::uint64_t id = 0; id < 8; ++id) {
    ASSERT_EQ(batcher.offer(make_request(id), clock.now_us()),
              serve::Reject::kNone);
  }
  serve::PendingRequest overflow = make_request(8);
  EXPECT_EQ(batcher.offer(std::move(overflow), clock.now_us()),
            serve::Reject::kQueueFull);
  // Rejected offers are not consumed: the caller still owns the promise.
  overflow.promise.set_value(serve::Response{});
  EXPECT_EQ(batcher.depth(), 8u);
}

TEST(MicroBatcher, ExpiredRequestsAreCulledNotBatched) {
  serve::FakeClock clock;
  clock.set_us(100);
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0, /*deadline_us=*/150),
                          clock.now_us()),
            serve::Reject::kNone);
  ASSERT_EQ(batcher.offer(make_request(1), clock.now_us()),
            serve::Reject::kNone);
  clock.advance_us(50);  // request 0's deadline is now due
  auto flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.expired), (std::vector<std::uint64_t>{0}));
  EXPECT_TRUE(flush.batch.empty());  // request 1 still has 950us of wait
  clock.advance_us(1000);
  flush = batcher.poll(clock.now_us());
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{1}));
}

TEST(MicroBatcher, CloseStopsAdmissionAndForceDrains) {
  serve::FakeClock clock;
  serve::MicroBatcher batcher(small_config());
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  batcher.close();
  EXPECT_TRUE(batcher.closed());
  serve::PendingRequest late = make_request(1);
  EXPECT_EQ(batcher.offer(std::move(late), clock.now_us()),
            serve::Reject::kShuttingDown);
  late.promise.set_value(serve::Response{});
  // The queued request survives close() and drains under force.
  const auto flush = batcher.poll(clock.now_us(), /*force=*/true);
  EXPECT_EQ(ids_of(flush.batch), (std::vector<std::uint64_t>{0}));
}

TEST(MicroBatcher, NextEventTracksFlushAndDeadline) {
  serve::FakeClock clock;
  clock.set_us(500);
  serve::MicroBatcher batcher(small_config());  // max_wait 1000
  EXPECT_EQ(batcher.next_event_us(), serve::MicroBatcher::kNever);
  ASSERT_EQ(batcher.offer(make_request(0), clock.now_us()),
            serve::Reject::kNone);
  EXPECT_EQ(batcher.next_event_us(), 1500u);  // oldest + max_wait
  ASSERT_EQ(batcher.offer(make_request(1, /*deadline_us=*/900),
                          clock.now_us()),
            serve::Reject::kNone);
  EXPECT_EQ(batcher.next_event_us(), 900u);  // the deadline is sooner
}

// -------------------------------------------------------- InferenceServer --

core::Pipeline make_pipeline(std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = 10;
  synth.class_count = 3;
  synth.train_count = 90;
  synth.test_count = 0;
  synth.seed = seed;
  const auto split = data::generate_synthetic(synth);
  core::PipelineConfig config;
  config.dim = 256;
  config.strategy = core::Strategy::kBaseline;
  config.seed = seed;
  core::Pipeline pipeline(config);
  pipeline.fit(split.train);
  return pipeline;
}

data::Dataset make_queries(std::size_t count, std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = 10;
  synth.class_count = 3;
  synth.train_count = count;
  synth.test_count = 0;
  synth.seed = seed;
  return data::generate_synthetic(synth).train;
}

std::vector<float> features_of(const data::Dataset& dataset, std::size_t i) {
  const auto row = dataset.sample(i);
  return {row.begin(), row.end()};
}

TEST(InferenceServer, ResponsesMatchDirectPredictBatchBitForBit) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(21));
  const data::Dataset queries = make_queries(64, 22);
  const std::vector<int> direct =
      registry.get("default")->predict_batch(queries);

  serve::ServerConfig config;
  config.batcher.max_batch = 16;
  serve::InferenceServer server(registry, config);
  std::vector<std::future<serve::Response>> inflight;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    inflight.push_back(server.submit(features_of(queries, i), 0, "",
                                     /*id=*/i));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response response = inflight[i].get();
    ASSERT_TRUE(response.ok()) << serve::reject_name(response.error);
    EXPECT_EQ(response.id, i);
    ASSERT_EQ(response.label, direct[i]) << "i=" << i;
  }
}

TEST(InferenceServer, ShutdownServesTheBacklog) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(23));
  const data::Dataset queries = make_queries(10, 24);
  const std::vector<int> direct =
      registry.get("default")->predict_batch(queries);

  // A flush horizon the test will never reach: nothing dispatches until
  // shutdown force-drains, so the drain path itself is what's exercised.
  serve::ServerConfig config;
  config.batcher.max_batch = 1000;
  config.batcher.max_wait_us = 3600u * 1000u * 1000u;
  serve::InferenceServer server(registry, config);
  std::vector<std::future<serve::Response>> inflight;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    inflight.push_back(server.submit(features_of(queries, i)));
  }
  server.shutdown();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response response = inflight[i].get();
    ASSERT_TRUE(response.ok()) << serve::reject_name(response.error);
    EXPECT_EQ(response.label, direct[i]) << "i=" << i;
  }
  // After shutdown, admission fails with the typed reject, not a hang.
  EXPECT_EQ(server.predict(features_of(queries, 0)).error,
            serve::Reject::kShuttingDown);
}

TEST(InferenceServer, ExpiredDeadlineIsShedWithTypedReject) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(25));
  const data::Dataset queries = make_queries(2, 26);

  serve::FakeClock clock;
  clock.set_us(1000);
  serve::ServerConfig config;
  config.batcher.max_batch = 1000;  // only the deadline can act here
  serve::InferenceServer server(registry, config, &clock);
  // Deadline already in the past at submission: whenever the worker gets
  // to it, the only legal outcome is kDeadlineExceeded.
  const serve::Response expired =
      server.predict(features_of(queries, 0), /*deadline_us=*/500);
  EXPECT_EQ(expired.error, serve::Reject::kDeadlineExceeded);
  // A generous deadline must survive; advancing the fake clock past the
  // batcher's wait window (but far short of the deadline) lets the worker
  // time-flush the request.
  auto alive_future =
      server.submit(features_of(queries, 1), /*deadline_us=*/1000000);
  clock.advance_us(5000);
  const serve::Response alive = alive_future.get();
  EXPECT_TRUE(alive.ok()) << serve::reject_name(alive.error);
}

TEST(InferenceServer, UnknownModelAndBadArityRejectImmediately) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(27));
  serve::InferenceServer server(registry, serve::ServerConfig{});
  const data::Dataset queries = make_queries(1, 28);

  const serve::Response no_model =
      server.predict(features_of(queries, 0), 0, "missing");
  EXPECT_EQ(no_model.error, serve::Reject::kModelNotFound);

  const serve::Response bad_arity = server.predict({1.0f, 2.0f});
  EXPECT_EQ(bad_arity.error, serve::Reject::kBadRequest);
}

TEST(InferenceServer, HotReloadSwapsModelsWithoutRestart) {
  const std::string path_a = ::testing::TempDir() + "/serve_reload_a.lhdp";
  const std::string path_b = ::testing::TempDir() + "/serve_reload_b.lhdp";
  core::save_pipeline(make_pipeline(31), path_a);
  core::save_pipeline(make_pipeline(32), path_b);

  serve::ModelRegistry registry;
  registry.load("default", path_a);
  const auto first = registry.get("default");
  serve::InferenceServer server(registry, serve::ServerConfig{});
  const data::Dataset queries = make_queries(8, 33);

  registry.load("default", path_b);  // hot swap while the server runs
  const auto second = registry.get("default");
  EXPECT_NE(first.get(), second.get());
  const std::vector<int> direct = second->predict_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response response = server.predict(features_of(queries, i));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.label, direct[i]) << "i=" << i;
  }

  // A failed reload must leave the registry serving the current model.
  EXPECT_THROW(registry.load("default", path_a + ".missing"),
               std::exception);
  EXPECT_EQ(registry.get("default").get(), second.get());

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ModelRegistry, AddRequiresFittedPipelineAndGetMisses) {
  serve::ModelRegistry registry;
  core::PipelineConfig config;
  config.dim = 128;
  EXPECT_THROW(registry.add("unfit", core::Pipeline(config)),
               std::invalid_argument);
  EXPECT_EQ(registry.get("absent"), nullptr);
  registry.add("m", make_pipeline(35));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_NE(registry.get("m"), nullptr);
  registry.evict("m");
  EXPECT_EQ(registry.get("m"), nullptr);
}

// --------------------------------------------------------------- protocol --

TEST(Protocol, RequestRoundTripsThroughAStream) {
  serve::WireRequest request;
  request.id = 42;
  request.deadline_budget_us = 2500;
  request.tenant = "default";
  request.features = {0.5f, -1.25f, 3.0f};

  std::stringstream stream;
  serve::write_request(stream, request);
  serve::WireRequest decoded;
  ASSERT_TRUE(serve::read_request(stream, &decoded, "test"));
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.deadline_budget_us, request.deadline_budget_us);
  EXPECT_EQ(decoded.tenant, request.tenant);
  EXPECT_EQ(decoded.features, request.features);
  // Clean EOF at the frame boundary reads as "no more requests".
  EXPECT_FALSE(serve::read_request(stream, &decoded, "test"));
}

TEST(Protocol, ResponseRoundTripsThroughAStream) {
  serve::Response response;
  response.id = 7;
  response.error = serve::Reject::kQueueFull;
  response.label = -1;
  response.batch_size = 16;
  response.latency_seconds = 0.0025;

  std::stringstream stream;
  serve::write_response(stream, response);
  serve::Response decoded;
  ASSERT_TRUE(serve::read_response(stream, &decoded, "test"));
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_EQ(decoded.label, response.label);
  EXPECT_EQ(decoded.batch_size, response.batch_size);
  EXPECT_EQ(decoded.latency_seconds, response.latency_seconds);
}

TEST(Protocol, RejectsBadMagicTruncationAndGarbage) {
  serve::WireRequest request;
  request.features = {1.0f};
  const std::string frame = serve::encode_request(request);

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  std::stringstream wrong(bad_magic);
  serve::WireRequest out;
  EXPECT_THROW((void)serve::read_request(wrong, &out, "test"),
               std::runtime_error);

  // EOF in the middle of a frame is an error, not a silent stop.
  std::stringstream cut(frame.substr(0, frame.size() - 2));
  EXPECT_THROW((void)serve::read_request(cut, &out, "test"),
               std::runtime_error);

  // A feature count pointing past the payload must be caught by the
  // bounds-checked reader before any allocation.
  std::string lying = frame;
  lying[frame.size() - sizeof(float) - 1] = '\x7f';
  std::stringstream hostile(lying);
  EXPECT_THROW((void)serve::read_request(hostile, &out, "test"),
               std::runtime_error);
}

TEST(Protocol, RejectsOutOfRangeStatusByte) {
  serve::Response response;
  std::string frame = serve::encode_response(response);
  // The status byte sits right after the 8-byte header + 8-byte id.
  frame[8 + 8] = '\x77';
  std::stringstream stream(frame);
  serve::Response out;
  EXPECT_THROW((void)serve::read_response(stream, &out, "test"),
               std::runtime_error);
}

// ------------------------------------------------------ tenancy: protocol --

TEST(Protocol, V1FramesStillDecodeAndRouteToTheirTenantSlot) {
  serve::WireRequest request;
  request.id = 9;
  request.tenant = "acme";
  request.features = {1.0f, 2.0f};
  request.version = 1;

  std::stringstream stream;
  serve::write_request(stream, request);
  EXPECT_EQ(stream.str().substr(0, 4), "LSRQ");  // v1 magic on the wire
  serve::WireRequest decoded;
  ASSERT_TRUE(serve::read_request(stream, &decoded, "test"));
  EXPECT_EQ(decoded.version, 1);
  EXPECT_EQ(decoded.tenant, "acme");
  EXPECT_EQ(decoded.features, request.features);
}

TEST(Protocol, V2ResponseEchoesTenantAndV1ResponseDropsIt) {
  serve::Response response;
  response.id = 3;
  response.label = 2;
  response.tenant = "globex";

  std::stringstream v2;
  serve::write_response(v2, response, 2);
  EXPECT_EQ(v2.str().substr(0, 4), "LSS2");
  serve::Response from_v2;
  ASSERT_TRUE(serve::read_response(v2, &from_v2, "test"));
  EXPECT_EQ(from_v2.tenant, "globex");

  std::stringstream v1;
  serve::write_response(v1, response, 1);
  EXPECT_EQ(v1.str().substr(0, 4), "LSRS");
  serve::Response from_v1;
  ASSERT_TRUE(serve::read_response(v1, &from_v1, "test"));
  EXPECT_EQ(from_v1.label, 2);
  EXPECT_TRUE(from_v1.tenant.empty());  // v1 clients never see the field
}

TEST(Protocol, RejectsInvalidTenantIdsAndLyingTenantLengths) {
  serve::WireRequest request;
  request.tenant = "Not.Valid";  // uppercase + '.' outside the charset
  EXPECT_THROW((void)serve::encode_request(request), std::runtime_error);

  request.tenant = "ok_tenant";
  std::string frame = serve::encode_request(request);
  // tenant_length lives after header(8) + id(8) + deadline(8); point it
  // past the payload end.
  frame[8 + 8 + 8] = '\xff';
  frame[8 + 8 + 8 + 1] = '\xff';
  std::stringstream stream(frame);
  serve::WireRequest out;
  EXPECT_THROW((void)serve::read_request(stream, &out, "test"),
               std::runtime_error);
}

TEST(Protocol, DecodeFuzzTypedErrorsNeverCrashOrHang) {
  serve::WireRequest request;
  request.id = 77;
  request.deadline_budget_us = 10;
  request.tenant = "acme";
  request.features = {0.25f, -1.0f, 8.5f};
  for (const int version : {1, 2}) {
    request.version = version;
    const std::string frame = serve::encode_request(request);
    // Every truncation point: either clean EOF (cut at a frame boundary,
    // i.e. empty input) or a typed error — never a crash or silent junk.
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      std::stringstream stream(frame.substr(0, cut));
      serve::WireRequest out;
      if (cut == 0) {
        EXPECT_FALSE(serve::read_request(stream, &out, "fuzz"));
      } else {
        EXPECT_THROW((void)serve::read_request(stream, &out, "fuzz"),
                     std::runtime_error);
      }
    }
    // Every single-byte corruption: decoding either succeeds (the flip
    // landed in a don't-care bit like a feature value) or raises a typed
    // std::runtime_error. Anything else — a crash, an std::bad_alloc from
    // trusting a hostile length — fails the test.
    for (std::size_t i = 0; i < frame.size(); ++i) {
      for (const char flip : {'\x01', '\x7f', '\xff'}) {
        std::string mutated = frame;
        mutated[i] = static_cast<char>(mutated[i] ^ flip);
        std::stringstream stream(mutated);
        serve::WireRequest out;
        try {
          (void)serve::read_request(stream, &out, "fuzz");
        } catch (const std::runtime_error&) {
          // typed rejection: exactly what the contract promises
        }
      }
    }
  }
}

// ----------------------------------------------------- tenancy: batching --

serve::PendingRequest make_tenant_request(std::uint64_t id,
                                          const std::string& tenant) {
  serve::PendingRequest request;
  request.id = id;
  request.tenant = tenant;
  return request;
}

TEST(MicroBatcher, RoundRobinAlternatesAcrossTenants) {
  serve::FakeClock clock;
  serve::BatcherConfig config = small_config();
  config.max_batch = 2;
  config.queue_capacity = 16;
  serve::MicroBatcher batcher(config);
  for (std::uint64_t id = 0; id < 6; ++id) {
    ASSERT_EQ(batcher.offer(make_tenant_request(id, "hog"), clock.now_us()),
              serve::Reject::kNone);
  }
  ASSERT_EQ(batcher.offer(make_tenant_request(100, "mouse"), clock.now_us()),
            serve::Reject::kNone);
  // Each flush serves a single tenant; consecutive force-polls must not
  // let the deep queue starve the shallow one.
  const auto first = batcher.poll(clock.now_us(), /*force=*/true);
  const auto second = batcher.poll(clock.now_us(), /*force=*/true);
  ASSERT_FALSE(first.batch.empty());
  ASSERT_FALSE(second.batch.empty());
  EXPECT_NE(first.tenant, second.tenant);
  std::vector<std::string> served = {first.tenant, second.tenant};
  EXPECT_NE(std::find(served.begin(), served.end(), "mouse"), served.end());
}

TEST(MicroBatcher, PerTenantCapacityShedsTheFloodNotTheNeighbor) {
  serve::FakeClock clock;
  serve::BatcherConfig config = small_config();
  config.queue_capacity = 8;
  config.tenant_capacity = 2;
  serve::MicroBatcher batcher(config);
  ASSERT_EQ(batcher.offer(make_tenant_request(0, "hog"), clock.now_us()),
            serve::Reject::kNone);
  ASSERT_EQ(batcher.offer(make_tenant_request(1, "hog"), clock.now_us()),
            serve::Reject::kNone);
  serve::PendingRequest overflow = make_tenant_request(2, "hog");
  EXPECT_EQ(batcher.offer(std::move(overflow), clock.now_us()),
            serve::Reject::kQueueFull);
  overflow.promise.set_value(serve::Response{});
  // The flood's shed leaves the total queue open for everyone else.
  EXPECT_EQ(batcher.offer(make_tenant_request(3, "mouse"), clock.now_us()),
            serve::Reject::kNone);
  EXPECT_EQ(batcher.tenant_depth("hog"), 2u);
  EXPECT_EQ(batcher.tenant_depth("mouse"), 1u);
  EXPECT_EQ(batcher.depth(), 3u);
}

TEST(MicroBatcher, TenantCapacityMustNotExceedQueueCapacity) {
  serve::BatcherConfig config = small_config();
  config.tenant_capacity = config.queue_capacity + 1;
  EXPECT_THROW(serve::MicroBatcher{config}, std::invalid_argument);
}

// ------------------------------------------------------- tenancy: server --

TEST(InferenceServer, RoutesEachTenantToItsOwnModel) {
  serve::ModelRegistry registry;
  registry.add("acme", make_pipeline(41));
  registry.add("globex", make_pipeline(47));
  const data::Dataset queries = make_queries(12, 43);
  const std::vector<int> acme_direct =
      registry.get("acme")->predict_batch(queries);
  const std::vector<int> globex_direct =
      registry.get("globex")->predict_batch(queries);
  // Distinct seeds must give distinct models for routing to be observable.
  ASSERT_NE(acme_direct, globex_direct);

  serve::ServerConfig config;
  config.default_tenant = "acme";
  serve::InferenceServer server(registry, config);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response from_acme =
        server.predict(features_of(queries, i), 0, "acme");
    ASSERT_TRUE(from_acme.ok());
    EXPECT_EQ(from_acme.label, acme_direct[i]);
    EXPECT_EQ(from_acme.tenant, "acme");
    const serve::Response from_globex =
        server.predict(features_of(queries, i), 0, "globex");
    ASSERT_TRUE(from_globex.ok());
    EXPECT_EQ(from_globex.label, globex_direct[i]);
    EXPECT_EQ(from_globex.tenant, "globex");
    // An empty tenant resolves to the configured default.
    const serve::Response defaulted =
        server.predict(features_of(queries, i));
    ASSERT_TRUE(defaulted.ok());
    EXPECT_EQ(defaulted.label, acme_direct[i]);
    EXPECT_EQ(defaulted.tenant, "acme");
  }
}

TEST(InferenceServer, EvictedTenantRejectsNewTrafficTyped) {
  serve::ModelRegistry registry;
  registry.add("acme", make_pipeline(51));
  serve::ServerConfig config;
  config.default_tenant = "acme";
  serve::InferenceServer server(registry, config);
  const data::Dataset queries = make_queries(1, 52);
  ASSERT_TRUE(server.predict(features_of(queries, 0), 0, "acme").ok());
  registry.evict("acme");
  EXPECT_EQ(server.predict(features_of(queries, 0), 0, "acme").error,
            serve::Reject::kModelNotFound);
}

TEST(InferenceServer, BindRejectsInvalidTenantIds) {
  serve::ModelRegistry registry;
  EXPECT_THROW(registry.add("Bad.Tenant", make_pipeline(53)),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", make_pipeline(53)), std::invalid_argument);
}

TEST(InferenceServer, ManualDispatchPumpsOnlyWhenDriven) {
  serve::ModelRegistry registry;
  registry.add("default", make_pipeline(55));
  const data::Dataset queries = make_queries(3, 56);
  const std::vector<int> direct =
      registry.get("default")->predict_batch(queries);

  serve::FakeClock clock;
  serve::ServerConfig config;
  config.manual_dispatch = true;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 1000;
  serve::InferenceServer server(registry, config, &clock);
  std::vector<std::future<serve::Response>> inflight;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    inflight.push_back(server.submit(features_of(queries, i)));
  }
  // No worker thread: nothing resolves until the harness pumps, and the
  // young batch is not yet due.
  EXPECT_EQ(server.run_until_idle(), 0u);
  EXPECT_EQ(server.queue_depth(), queries.size());
  EXPECT_EQ(server.next_event_us(), 1000u);  // oldest + max_wait
  clock.set_us(1000);
  EXPECT_EQ(server.run_until_idle(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const serve::Response response = inflight[i].get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.label, direct[i]);
  }
  server.shutdown();
}

// ------------------------------------------- online feedback: protocol --

TEST(Protocol, FeedbackFrameRoundTripsThroughClientFrameReader) {
  serve::WireFeedback feedback;
  feedback.id = 31;
  feedback.tenant = "acme";
  feedback.label = 2;
  std::stringstream stream;
  serve::write_feedback(stream, feedback);
  EXPECT_EQ(stream.str().substr(0, 4), "LSF2");
  serve::ClientFrame frame;
  ASSERT_TRUE(serve::read_client_frame(stream, &frame, "test"));
  ASSERT_TRUE(frame.is_feedback());
  EXPECT_EQ(frame.feedback.id, 31u);
  EXPECT_EQ(frame.feedback.tenant, "acme");
  EXPECT_EQ(frame.feedback.label, 2);
  // Clean EOF at the frame boundary reads as "no more frames".
  EXPECT_FALSE(serve::read_client_frame(stream, &frame, "test"));
}

TEST(Protocol, ClientFrameReaderInterleavesRequestsAndFeedback) {
  serve::WireRequest request;
  request.id = 1;
  request.tenant = "acme";
  request.features = {0.5f, 1.5f};
  serve::WireFeedback feedback;
  feedback.id = 1;
  feedback.tenant = "acme";
  feedback.label = 0;

  std::stringstream stream;
  serve::write_request(stream, request);
  serve::write_feedback(stream, feedback);
  request.id = 2;
  serve::write_request(stream, request);

  serve::ClientFrame frame;
  ASSERT_TRUE(serve::read_client_frame(stream, &frame, "test"));
  EXPECT_FALSE(frame.is_feedback());
  EXPECT_EQ(frame.request.id, 1u);
  ASSERT_TRUE(serve::read_client_frame(stream, &frame, "test"));
  ASSERT_TRUE(frame.is_feedback());
  EXPECT_EQ(frame.feedback.id, 1u);
  ASSERT_TRUE(serve::read_client_frame(stream, &frame, "test"));
  EXPECT_FALSE(frame.is_feedback());
  EXPECT_EQ(frame.request.id, 2u);
  EXPECT_FALSE(serve::read_client_frame(stream, &frame, "test"));
}

TEST(Protocol, FeedbackRejectsInvalidTenantIdsAndLabels) {
  serve::WireFeedback feedback;
  feedback.tenant = "Not.Valid";
  EXPECT_THROW((void)serve::encode_feedback(feedback), std::runtime_error);
}

TEST(Protocol, FeedbackDecodeFuzzTypedErrorsNeverCrashOrHang) {
  // The same hostile-input contract the request fuzz enforces, against
  // the LSF2 generation: every truncation is a clean EOF (empty input)
  // or a typed error, and every single-byte corruption either decodes or
  // raises std::runtime_error — never a crash, hang or silent junk.
  serve::WireFeedback feedback;
  feedback.id = 77;
  feedback.tenant = "acme";
  feedback.label = 1;
  const std::string frame = serve::encode_feedback(feedback);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::stringstream stream(frame.substr(0, cut));
    serve::ClientFrame out;
    if (cut == 0) {
      EXPECT_FALSE(serve::read_client_frame(stream, &out, "fuzz"));
    } else {
      EXPECT_THROW((void)serve::read_client_frame(stream, &out, "fuzz"),
                   std::runtime_error);
    }
  }
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (const char flip : {'\x01', '\x7f', '\xff'}) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      std::stringstream stream(mutated);
      serve::ClientFrame out;
      try {
        (void)serve::read_client_frame(stream, &out, "fuzz");
      } catch (const std::runtime_error&) {
        // typed rejection: exactly what the contract promises
      }
    }
  }
}

// -------------------------------------------- online feedback: sidecar --

serve::OnlineSidecarConfig manual_sidecar_config() {
  serve::OnlineSidecarConfig config;
  config.manual = true;
  config.seed = 7;
  return config;
}

TEST(OnlineSidecar, UnknownAndCrossTenantFeedbackRejectTyped) {
  serve::ModelRegistry registry;
  registry.add("acme", make_pipeline(61));
  registry.add("globex", make_pipeline(62));
  serve::FakeClock clock;
  serve::OnlineSidecar sidecar(registry, manual_sidecar_config(), &clock);
  sidecar.enable("acme");
  sidecar.enable("globex");
  const data::Dataset queries = make_queries(4, 63);

  sidecar.record("acme", 5, features_of(queries, 0));
  // The correlation key is (tenant, id): globex cannot relabel acme's
  // traffic even with the right id, and an id acme never served is
  // equally unknown.
  EXPECT_EQ(sidecar.offer_feedback("globex", 5, 0),
            serve::Reject::kUnknownCorrelation);
  EXPECT_EQ(sidecar.offer_feedback("acme", 999, 0),
            serve::Reject::kUnknownCorrelation);
  // A tenant that is not online-enabled at all is the same typed reject.
  EXPECT_EQ(sidecar.offer_feedback("mouse", 5, 0),
            serve::Reject::kUnknownCorrelation);
  // Out-of-range labels are a bad request and do NOT consume the record.
  EXPECT_EQ(sidecar.offer_feedback("acme", 5, 3),
            serve::Reject::kBadRequest);
  EXPECT_EQ(sidecar.offer_feedback("acme", 5, -1),
            serve::Reject::kBadRequest);
  // The happy path accepts exactly once: acceptance consumes the record,
  // so a duplicate feedback is unknown again.
  EXPECT_EQ(sidecar.offer_feedback("acme", 5, 1), serve::Reject::kNone);
  EXPECT_EQ(sidecar.offer_feedback("acme", 5, 1),
            serve::Reject::kUnknownCorrelation);
  EXPECT_EQ(sidecar.pump(), 1u);
  EXPECT_EQ(sidecar.feedback_accepted("acme"), 1u);
  EXPECT_EQ(sidecar.feedback_accepted("globex"), 0u);
}

TEST(OnlineSidecar, FullFeedbackQueueShedsTyped) {
  serve::ModelRegistry registry;
  registry.add("acme", make_pipeline(67));
  serve::FakeClock clock;
  auto config = manual_sidecar_config();
  config.queue_capacity = 2;
  serve::OnlineSidecar sidecar(registry, config, &clock);
  sidecar.enable("acme");
  const data::Dataset queries = make_queries(3, 68);
  for (std::uint64_t id = 0; id < 3; ++id) {
    sidecar.record("acme", id, features_of(queries, id));
  }
  EXPECT_EQ(sidecar.offer_feedback("acme", 0, 0), serve::Reject::kNone);
  EXPECT_EQ(sidecar.offer_feedback("acme", 1, 0), serve::Reject::kNone);
  // Queue at capacity: shed typed, correlation NOT consumed...
  EXPECT_EQ(sidecar.offer_feedback("acme", 2, 0),
            serve::Reject::kQueueFull);
  EXPECT_EQ(sidecar.pump(), 2u);
  // ...so the same feedback succeeds once the queue drained.
  EXPECT_EQ(sidecar.offer_feedback("acme", 2, 0), serve::Reject::kNone);
  EXPECT_EQ(sidecar.pump(), 1u);
  EXPECT_EQ(sidecar.feedback_accepted("acme"), 3u);
}

TEST(OnlineSidecar, CorrelationRingEvictsOldestServedRequests) {
  serve::ModelRegistry registry;
  registry.add("acme", make_pipeline(71));
  serve::FakeClock clock;
  auto config = manual_sidecar_config();
  config.correlation_capacity = 2;
  serve::OnlineSidecar sidecar(registry, config, &clock);
  sidecar.enable("acme");
  const data::Dataset queries = make_queries(3, 72);
  for (std::uint64_t id = 0; id < 3; ++id) {
    sidecar.record("acme", id, features_of(queries, id));
  }
  // id 0 was evicted to make room for id 2; late feedback for it is the
  // same typed reject as never-served.
  EXPECT_EQ(sidecar.offer_feedback("acme", 0, 0),
            serve::Reject::kUnknownCorrelation);
  EXPECT_EQ(sidecar.offer_feedback("acme", 1, 0), serve::Reject::kNone);
  EXPECT_EQ(sidecar.offer_feedback("acme", 2, 0), serve::Reject::kNone);
}

TEST(OnlineSidecar, DriftAlarmFiresWhenLiveTrailsShadow) {
  // Concept drift as a consistent label permutation: the feedback stream
  // reports (true + 1) % 3 for clusters the live model was trained on
  // with the unshifted labels. The shadow learns the permuted concept
  // (it is exactly as separable), so at flip attempts the live holdout
  // accuracy trails the shadow's by far more than the margin — the
  // drift alarm must fire. Fully deterministic: synthetic data, manual
  // pump, FakeClock. The cadence must stay tighter than the shadow's
  // convergence horizon: the permuted concept is learned in ~10 updates,
  // after which update-count attempts stop coming, so the last attempt
  // has to land once the holdout ring already holds min_holdout samples.
  serve::ModelRegistry registry;
  registry.add("acme", make_pipeline(81));
  serve::FakeClock clock;
  auto config = manual_sidecar_config();
  config.flip_every_updates = 2;
  config.holdout_every = 4;
  config.min_holdout = 4;
  config.drift_alarm_margin = 0.25;
  serve::OnlineSidecar sidecar(registry, config, &clock);
  sidecar.enable("acme");
  const data::Dataset queries = make_queries(64, 81);
  for (std::uint64_t id = 0; id < queries.size(); ++id) {
    sidecar.record("acme", id, features_of(queries, id));
    const std::int32_t drifted = (queries.label(id) + 1) % 3;
    ASSERT_EQ(sidecar.offer_feedback("acme", id, drifted),
              serve::Reject::kNone);
    ASSERT_EQ(sidecar.pump(), 1u);
  }
  EXPECT_GE(sidecar.drift_alarms("acme"), 1u)
      << "live model trailed the shadow by > margin at a flip attempt "
         "but no drift alarm fired";
  // The alarm observes, the flip repairs: the gate still bound the
  // better (shadow) generation.
  EXPECT_GE(sidecar.flips("acme"), 1u);
}

TEST(OnlineSidecar, DriftAlarmMarginZeroDisablesTheAlarm) {
  // Same drifted stream and cadence as the test above — flip attempts
  // happen and the live model demonstrably trails the shadow — but with
  // the margin at 0 the alarm is disabled, so only the flip fires.
  serve::ModelRegistry registry;
  registry.add("acme", make_pipeline(81));
  serve::FakeClock clock;
  auto config = manual_sidecar_config();
  config.flip_every_updates = 2;
  config.holdout_every = 4;
  config.min_holdout = 4;
  config.drift_alarm_margin = 0.0;
  serve::OnlineSidecar sidecar(registry, config, &clock);
  sidecar.enable("acme");
  const data::Dataset queries = make_queries(64, 81);
  for (std::uint64_t id = 0; id < queries.size(); ++id) {
    sidecar.record("acme", id, features_of(queries, id));
    ASSERT_EQ(sidecar.offer_feedback("acme", id,
                                     (queries.label(id) + 1) % 3),
              serve::Reject::kNone);
    ASSERT_EQ(sidecar.pump(), 1u);
  }
  // The flip proves an attempt with a full holdout actually happened —
  // the quiet alarm is the margin gate, not a starved cadence.
  EXPECT_GE(sidecar.flips("acme"), 1u);
  EXPECT_EQ(sidecar.drift_alarms("acme"), 0u);
}

}  // namespace
}  // namespace lehdc
