#include "hv/bitvector.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace lehdc::hv {
namespace {

TEST(BitVector, StartsAllPositive) {
  const BitVector hv(100);
  EXPECT_EQ(hv.dim(), 100u);
  EXPECT_EQ(hv.count_negatives(), 0u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hv.get(i), 1);
  }
}

TEST(BitVector, SetAndGetBipolar) {
  BitVector hv(10);
  hv.set(3, -1);
  EXPECT_EQ(hv.get(3), -1);
  EXPECT_TRUE(hv.get_bit(3));
  hv.set(3, 1);
  EXPECT_EQ(hv.get(3), 1);
  EXPECT_FALSE(hv.get_bit(3));
}

TEST(BitVector, RejectsNonBipolarValues) {
  BitVector hv(10);
  EXPECT_THROW(hv.set(0, 0), std::invalid_argument);
  EXPECT_THROW(hv.set(0, 2), std::invalid_argument);
}

TEST(BitVector, BoundsChecked) {
  BitVector hv(10);
  EXPECT_THROW((void)hv.get(10), std::invalid_argument);
  EXPECT_THROW(hv.set_bit(10, true), std::invalid_argument);
  EXPECT_THROW(hv.flip(10), std::invalid_argument);
}

TEST(BitVector, WordCountIsCeilDiv64) {
  EXPECT_EQ(BitVector(0).word_count(), 0u);
  EXPECT_EQ(BitVector(1).word_count(), 1u);
  EXPECT_EQ(BitVector(64).word_count(), 1u);
  EXPECT_EQ(BitVector(65).word_count(), 2u);
  EXPECT_EQ(BitVector(10000).word_count(), 157u);
}

TEST(BitVector, BindingMatchesComponentwiseProduct) {
  util::Rng rng(1);
  const BitVector a = BitVector::random(200, rng);
  const BitVector b = BitVector::random(200, rng);
  BitVector bound = a;
  bound.bind_inplace(b);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(bound.get(i), a.get(i) * b.get(i));
  }
}

TEST(BitVector, BindingIsAnInvolution) {
  util::Rng rng(2);
  const BitVector a = BitVector::random(300, rng);
  const BitVector b = BitVector::random(300, rng);
  BitVector restored = a;
  restored.bind_inplace(b);
  restored.bind_inplace(b);
  EXPECT_EQ(restored, a);
}

TEST(BitVector, BindingRejectsMismatchedDims) {
  BitVector a(10);
  const BitVector b(11);
  EXPECT_THROW(a.bind_inplace(b), std::invalid_argument);
}

TEST(BitVector, HammingOfSelfIsZero) {
  util::Rng rng(3);
  const BitVector a = BitVector::random(500, rng);
  EXPECT_EQ(BitVector::hamming(a, a), 0u);
}

TEST(BitVector, HammingOfComplementIsD) {
  util::Rng rng(4);
  BitVector a = BitVector::random(100, rng);
  BitVector b = a;
  for (std::size_t i = 0; i < 100; ++i) {
    b.flip(i);
  }
  EXPECT_EQ(BitVector::hamming(a, b), 100u);
}

TEST(BitVector, HammingIsSymmetric) {
  util::Rng rng(5);
  const BitVector a = BitVector::random(777, rng);
  const BitVector b = BitVector::random(777, rng);
  EXPECT_EQ(BitVector::hamming(a, b), BitVector::hamming(b, a));
}

TEST(BitVector, DotEqualsDMinusTwoHamming) {
  util::Rng rng(6);
  const BitVector a = BitVector::random(321, rng);
  const BitVector b = BitVector::random(321, rng);
  std::int64_t manual = 0;
  for (std::size_t i = 0; i < 321; ++i) {
    manual += a.get(i) * b.get(i);
  }
  EXPECT_EQ(BitVector::dot(a, b), manual);
  EXPECT_EQ(BitVector::dot(a, b),
            321 - 2 * static_cast<std::int64_t>(BitVector::hamming(a, b)));
}

TEST(BitVector, MaskedDotMatchesManual) {
  util::Rng rng(7);
  const std::size_t dim = 130;
  const BitVector a = BitVector::random(dim, rng);
  const BitVector b = BitVector::random(dim, rng);
  std::vector<std::uint64_t> mask(a.word_count(), 0);
  std::size_t kept = 0;
  std::int64_t manual = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    if (rng.next_bool(0.6)) {
      mask[i / 64] |= std::uint64_t{1} << (i % 64);
      ++kept;
      manual += a.get(i) * b.get(i);
    }
  }
  EXPECT_EQ(BitVector::masked_dot(a, b, mask, kept), manual);
}

TEST(BitVector, RotationPreservesNegativeCount) {
  util::Rng rng(8);
  const BitVector a = BitVector::random(100, rng);
  const BitVector r = a.rotated(17);
  EXPECT_EQ(a.count_negatives(), r.count_negatives());
}

TEST(BitVector, RotationShiftsComponents) {
  BitVector a(10);
  a.set_bit(2, true);
  const BitVector r = a.rotated(3);
  EXPECT_TRUE(r.get_bit(5));
  EXPECT_EQ(r.count_negatives(), 1u);
}

TEST(BitVector, RotationWrapsAround) {
  BitVector a(10);
  a.set_bit(8, true);
  const BitVector r = a.rotated(5);
  EXPECT_TRUE(r.get_bit(3));
}

TEST(BitVector, FullRotationIsIdentity) {
  util::Rng rng(9);
  const BitVector a = BitVector::random(97, rng);
  EXPECT_EQ(a.rotated(97), a);
  EXPECT_EQ(a.rotated(0), a);
}

TEST(BitVector, RotationComposes) {
  util::Rng rng(10);
  const BitVector a = BitVector::random(50, rng);
  EXPECT_EQ(a.rotated(7).rotated(11), a.rotated(18));
}

TEST(BitVector, FlipRandomFlipsExactCount) {
  util::Rng rng(11);
  BitVector a(200);
  a.flip_random(37, rng);
  EXPECT_EQ(a.count_negatives(), 37u);
}

TEST(BitVector, FlipRandomRejectsOverflow) {
  util::Rng rng(12);
  BitVector a(10);
  EXPECT_THROW(a.flip_random(11, rng), std::invalid_argument);
}

TEST(BitVector, RandomizeIsBalanced) {
  util::Rng rng(13);
  const BitVector a = BitVector::random(10000, rng);
  const double fraction =
      static_cast<double>(a.count_negatives()) / 10000.0;
  EXPECT_NEAR(fraction, 0.5, 0.03);
}

TEST(BitVector, RandomTailBitsStayClear) {
  util::Rng rng(14);
  // dim = 70: the final word has 6 valid bits; the rest must be zero so
  // popcount-based distances stay exact.
  const BitVector a = BitVector::random(70, rng);
  EXPECT_EQ(a.words().back() >> 6, 0u);
}

TEST(BitVector, ToStringRendersSigns) {
  BitVector a(5);
  a.set(1, -1);
  a.set(4, -1);
  EXPECT_EQ(a.to_string(), "+-++-");
  EXPECT_EQ(a.to_string(3), "+-+...");
}

class BitVectorDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorDimSweep, DistanceIdentitiesHoldAtWordBoundaries) {
  const std::size_t dim = GetParam();
  util::Rng rng(100 + dim);
  const BitVector a = BitVector::random(dim, rng);
  const BitVector b = BitVector::random(dim, rng);
  const std::size_t hamming = BitVector::hamming(a, b);
  EXPECT_LE(hamming, dim);
  EXPECT_EQ(BitVector::dot(a, b),
            static_cast<std::int64_t>(dim) -
                2 * static_cast<std::int64_t>(hamming));
  std::size_t manual = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    manual += a.get_bit(i) != b.get_bit(i) ? 1 : 0;
  }
  EXPECT_EQ(hamming, manual);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitVectorDimSweep,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           1000, 2048));

}  // namespace
}  // namespace lehdc::hv
