#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace lehdc::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.next() == b.next()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowBoundOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NextFloatInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.next_float();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.next_bool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NextBoolDegenerateProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(29);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NextRangeRespectsBounds) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_range(-2.5, 4.0);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.0);
  }
}

TEST(Rng, DeriveSeedDecorrelates) {
  Rng rng(37);
  const auto s1 = rng.derive_seed(0);
  const auto s2 = rng.derive_seed(0);
  EXPECT_NE(s1, s2);  // derivation advances the parent stream
  Rng child1(s1);
  Rng child2(s2);
  EXPECT_NE(child1.next(), child2.next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) {
    values[static_cast<std::size_t>(i)] = i;
  }
  auto shuffled = values;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleHandlesSmallRanges) {
  Rng rng(43);
  std::vector<int> empty;
  rng.shuffle(empty.begin(), empty.end());
  std::vector<int> single{5};
  rng.shuffle(single.begin(), single.end());
  EXPECT_EQ(single.front(), 5);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BitBalanceIsFair) {
  Rng rng(GetParam());
  std::size_t ones = 0;
  const int words = 2000;
  for (int i = 0; i < words; ++i) {
    ones += static_cast<std::size_t>(std::popcount(rng.next()));
  }
  const double fraction = static_cast<double>(ones) / (64.0 * words);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 0xdeadbeef,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace lehdc::util
