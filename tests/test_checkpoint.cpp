#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/lehdc_trainer.hpp"
#include "hdc/classifier.hpp"
#include "train/trainer.hpp"
#include "train_test_util.hpp"

namespace lehdc::core {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

LeHdcConfig small_config(std::size_t epochs, bool use_adam = true) {
  LeHdcConfig config;
  config.epochs = epochs;
  config.batch_size = 16;
  config.use_adam = use_adam;
  return config;
}

const hdc::BinaryClassifier& binary_of(const train::TrainResult& result) {
  const auto* binary = result.model->as_binary();
  EXPECT_NE(binary, nullptr);
  return *binary;
}

void expect_same_matrix(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const auto lhs = a.data();
  const auto rhs = b.data();
  EXPECT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end()));
}

void expect_same_model(const hdc::BinaryClassifier& a,
                       const hdc::BinaryClassifier& b) {
  ASSERT_EQ(a.class_count(), b.class_count());
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t k = 0; k < a.class_count(); ++k) {
    EXPECT_EQ(a.class_hypervector(k), b.class_hypervector(k))
        << "class " << k << " diverged";
  }
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  const auto path = temp_path("roundtrip.lhck");
  LeHdcCheckpoint original;
  original.dim = 320;
  original.class_count = 4;
  original.sample_count = 100;
  original.batch = 16;
  original.seed = 42;
  original.use_adam = true;
  original.next_epoch = 7;
  original.learning_rate = 0.005f;
  original.schedule.lr = 0.005f;
  original.schedule.best_loss = 0.123;
  original.schedule.bad_epochs = 2;
  original.schedule.decays = 1;
  original.schedule.seen_any = true;
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    (void)rng.next_gaussian();
  }
  original.rng = rng.state();
  original.latent = nn::Matrix(4, 320);
  original.latent.fill_gaussian(rng, 0.3f);
  original.adam_m = nn::Matrix(4, 320);
  original.adam_m.fill_gaussian(rng, 0.1f);
  original.adam_v = nn::Matrix(4, 320);
  original.adam_v.fill_gaussian(rng, 0.01f);
  original.adam_steps = 63;
  original.order = {4, 2, 0, 1, 3};

  save_checkpoint(original, path);
  const LeHdcCheckpoint loaded = load_checkpoint(path);

  EXPECT_EQ(loaded.dim, original.dim);
  EXPECT_EQ(loaded.class_count, original.class_count);
  EXPECT_EQ(loaded.sample_count, original.sample_count);
  EXPECT_EQ(loaded.batch, original.batch);
  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.use_adam, original.use_adam);
  EXPECT_EQ(loaded.next_epoch, original.next_epoch);
  EXPECT_EQ(loaded.learning_rate, original.learning_rate);
  EXPECT_EQ(loaded.schedule, original.schedule);
  EXPECT_EQ(loaded.rng, original.rng);
  expect_same_matrix(loaded.latent, original.latent);
  expect_same_matrix(loaded.adam_m, original.adam_m);
  expect_same_matrix(loaded.adam_v, original.adam_v);
  EXPECT_EQ(loaded.adam_steps, original.adam_steps);
  expect_same_matrix(loaded.sgd_velocity, original.sgd_velocity);
  EXPECT_EQ(loaded.order, original.order);
  std::remove(path.c_str());
}

TEST(Checkpoint, KillAndResumeIsBitIdentical) {
  // The tentpole guarantee: a run killed after epoch 4 and resumed from
  // its checkpoint must export the same model, bit for bit, as a run that
  // was never interrupted.
  const auto ckpt = temp_path("kill_resume.lhck");
  const auto fixture = test::make_encoded_fixture(4, 320, 24, 8, 40, 21);

  train::TrainOptions plain;
  plain.seed = 5;
  const auto uninterrupted =
      LeHdcTrainer(small_config(10)).train(fixture.train, plain);

  // "Killed" run: only reaches epoch 4, checkpointing every 2 epochs.
  train::TrainOptions first_leg;
  first_leg.seed = 5;
  first_leg.checkpoint_every = 2;
  first_leg.checkpoint_path = ckpt;
  (void)LeHdcTrainer(small_config(4)).train(fixture.train, first_leg);

  train::TrainOptions resumed;
  resumed.seed = 5;
  resumed.resume_path = ckpt;
  const auto second_leg =
      LeHdcTrainer(small_config(10)).train(fixture.train, resumed);

  EXPECT_EQ(second_leg.epochs_run, 10u);
  expect_same_model(binary_of(uninterrupted), binary_of(second_leg));
  std::remove(ckpt.c_str());
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalWithSgd) {
  const auto ckpt = temp_path("kill_resume_sgd.lhck");
  const auto fixture = test::make_encoded_fixture(3, 256, 20, 5, 30, 22);

  train::TrainOptions plain;
  plain.seed = 6;
  const auto uninterrupted =
      LeHdcTrainer(small_config(8, /*use_adam=*/false))
          .train(fixture.train, plain);

  train::TrainOptions first_leg;
  first_leg.seed = 6;
  first_leg.checkpoint_every = 3;
  first_leg.checkpoint_path = ckpt;
  (void)LeHdcTrainer(small_config(3, /*use_adam=*/false))
      .train(fixture.train, first_leg);

  train::TrainOptions resumed;
  resumed.seed = 6;
  resumed.resume_path = ckpt;
  const auto second_leg = LeHdcTrainer(small_config(8, /*use_adam=*/false))
                              .train(fixture.train, resumed);

  expect_same_model(binary_of(uninterrupted), binary_of(second_leg));
  std::remove(ckpt.c_str());
}

TEST(Checkpoint, ResumeFromFinalCheckpointRunsZeroEpochs) {
  const auto ckpt = temp_path("final.lhck");
  const auto fixture = test::make_encoded_fixture(3, 256, 16, 4, 30, 23);

  train::TrainOptions options;
  options.seed = 3;
  options.checkpoint_every = 2;
  options.checkpoint_path = ckpt;
  const auto full = LeHdcTrainer(small_config(6)).train(fixture.train,
                                                        options);

  train::TrainOptions resumed;
  resumed.seed = 3;
  resumed.resume_path = ckpt;
  const auto noop = LeHdcTrainer(small_config(6)).train(fixture.train,
                                                        resumed);
  EXPECT_EQ(noop.epochs_run, 6u);
  expect_same_model(binary_of(full), binary_of(noop));
  std::remove(ckpt.c_str());
}

TEST(Checkpoint, FingerprintMismatchThrows) {
  const auto ckpt = temp_path("fingerprint.lhck");
  const auto fixture = test::make_encoded_fixture(3, 256, 16, 4, 30, 24);

  train::TrainOptions options;
  options.seed = 3;
  options.checkpoint_every = 2;
  options.checkpoint_path = ckpt;
  (void)LeHdcTrainer(small_config(2)).train(fixture.train, options);

  // Different seed: the replayed stream would diverge silently, so resume
  // must refuse.
  train::TrainOptions wrong_seed;
  wrong_seed.seed = 4;
  wrong_seed.resume_path = ckpt;
  EXPECT_THROW(
      (void)LeHdcTrainer(small_config(4)).train(fixture.train, wrong_seed),
      std::runtime_error);

  // Different optimizer family.
  train::TrainOptions wrong_optimizer;
  wrong_optimizer.seed = 3;
  wrong_optimizer.resume_path = ckpt;
  EXPECT_THROW((void)LeHdcTrainer(small_config(4, /*use_adam=*/false))
                   .train(fixture.train, wrong_optimizer),
               std::runtime_error);
  std::remove(ckpt.c_str());
}

TEST(Checkpoint, CorruptedCheckpointThrows) {
  const auto path = temp_path("corrupt.lhck");
  LeHdcCheckpoint checkpoint;
  checkpoint.dim = 64;
  checkpoint.class_count = 2;
  checkpoint.sample_count = 10;
  checkpoint.batch = 5;
  checkpoint.latent = nn::Matrix(2, 64);
  checkpoint.order = {0, 1};
  save_checkpoint(checkpoint, path);

  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents[contents.size() / 2] =
      static_cast<char>(contents[contents.size() / 2] ^ 0x20);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  }
  EXPECT_THROW((void)load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW((void)load_checkpoint(temp_path("missing.lhck")),
               std::runtime_error);
}

TEST(Checkpoint, CheckpointEveryWithoutPathIsRejected) {
  const auto fixture = test::make_encoded_fixture(2, 128, 8, 2, 20, 25);
  train::TrainOptions options;
  options.seed = 1;
  options.checkpoint_every = 1;
  EXPECT_THROW(
      (void)LeHdcTrainer(small_config(1)).train(fixture.train, options),
      std::invalid_argument);
}

}  // namespace
}  // namespace lehdc::core
