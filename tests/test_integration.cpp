// Integration regression tests: a miniature version of the Table 1
// experiment matrix whose *orderings* (the paper's qualitative claims) are
// asserted, plus ensemble persistence. These are the tests that would catch
// a silent regression in any trainer's quality, not just its plumbing.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/profiles.hpp"
#include "eval/experiment.hpp"
#include "eval/presets.hpp"
#include "hdc/model_io.hpp"
#include "train/multimodel.hpp"
#include "train_test_util.hpp"

namespace lehdc {
namespace {

/// One shrunken benchmark column: all four Table 1 strategies on a small
/// profile with shared encoding, single trial.
std::vector<eval::StrategyOutcome> mini_column(data::BenchmarkId id,
                                               double scale,
                                               std::size_t max_features) {
  const auto profile = data::scaled(data::profile(id), scale, max_features);
  const data::TrainTestSplit split = generate_synthetic(profile.config);

  std::vector<core::PipelineConfig> configs;
  for (const auto strategy : eval::table1_strategies()) {
    core::PipelineConfig cfg = eval::table1_config(id, strategy, 1024, 5);
    cfg.lehdc.epochs = 20;
    cfg.lehdc.batch_size = 32;
    cfg.lehdc.learning_rate = 0.01f;
    cfg.retrain.iterations = 20;
    cfg.multimodel.models_per_class = 4;
    cfg.multimodel.epochs = 8;
    configs.push_back(cfg);
  }
  return eval::compare_strategies_shared_encoding(split, configs, 1);
}

double accuracy_of(const std::vector<eval::StrategyOutcome>& outcomes,
                   const std::string& strategy) {
  for (const auto& outcome : outcomes) {
    if (outcome.strategy == strategy) {
      return outcome.test_accuracy.mean;
    }
  }
  ADD_FAILURE() << "strategy " << strategy << " missing";
  return 0.0;
}

TEST(MiniTable1, LeHdcBeatsBaselineOnFashionColumn) {
  const auto outcomes =
      mini_column(data::BenchmarkId::kFashionMnist, 0.02, 256);
  const double baseline = accuracy_of(outcomes, "Baseline");
  const double retraining = accuracy_of(outcomes, "Retraining");
  const double lehdc = accuracy_of(outcomes, "LeHDC");
  EXPECT_GT(lehdc, baseline) << "the paper's headline ordering";
  EXPECT_GT(retraining, baseline - 3.0)
      << "retraining must not collapse below the baseline";
  EXPECT_GT(lehdc, 30.0);  // sanity floor, percent
}

TEST(MiniTable1, PamapColumnShowsMultimodalGap) {
  const auto outcomes = mini_column(data::BenchmarkId::kPamap, 0.02, 0);
  const double baseline = accuracy_of(outcomes, "Baseline");
  const double lehdc = accuracy_of(outcomes, "LeHDC");
  // PAMAP-like data is strongly multi-modal: the learned model must open a
  // clear gap over Eq. 2 averaging.
  EXPECT_GT(lehdc, baseline + 2.0);
}

TEST(EnsembleIo, RoundTripPredictsIdentically) {
  const auto fixture = test::make_encoded_fixture(3, 300, 12, 6, 40, 7);
  train::MultiModelConfig cfg;
  cfg.models_per_class = 3;
  cfg.epochs = 4;
  const train::MultiModelTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 2;
  const auto result = trainer.train(fixture.train, options);

  // Training is deterministic per seed, so a retrained ensemble is
  // bit-identical — the precondition for meaningful persistence.
  const auto result2 = trainer.train(fixture.train, options);
  ASSERT_EQ(result.model->accuracy(fixture.test),
            result2.model->accuracy(fixture.test));

  // Build an ensemble classifier directly for the IO test.
  util::Rng rng(3);
  std::vector<std::vector<hv::BitVector>> direct(2);
  for (auto& class_models : direct) {
    for (int m = 0; m < 3; ++m) {
      class_models.push_back(hv::BitVector::random(300, rng));
    }
  }
  const hdc::EnsembleClassifier original(direct);
  const std::string path = ::testing::TempDir() + "/ensemble.lhde";
  hdc::save_ensemble(original, path);
  const hdc::EnsembleClassifier loaded = hdc::load_ensemble(path);
  ASSERT_EQ(loaded.class_count(), 2u);
  ASSERT_EQ(loaded.models_per_class(), 3u);
  for (int i = 0; i < 20; ++i) {
    const auto query = hv::BitVector::random(300, rng);
    ASSERT_EQ(loaded.predict(query), original.predict(query));
  }
  std::remove(path.c_str());
}

TEST(EnsembleIo, MissingAndCorruptFilesThrow) {
  EXPECT_THROW((void)hdc::load_ensemble(::testing::TempDir() + "/no.lhde"),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "/bad.lhde";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("LHDCnotanensemble...............", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)hdc::load_ensemble(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lehdc
