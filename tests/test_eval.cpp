// Tests for the evaluation layer: metrics, presets, experiment runner,
// resource model and report writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "eval/experiment.hpp"
#include "train/baseline.hpp"
#include "eval/metrics.hpp"
#include "eval/presets.hpp"
#include "eval/report.hpp"
#include "eval/resource.hpp"
#include "train_test_util.hpp"

namespace lehdc::eval {
namespace {

TEST(ConfusionMatrix, AccumulatesCounts) {
  ConfusionMatrix matrix(3);
  matrix.add(0, 0);
  matrix.add(0, 1);
  matrix.add(1, 1);
  matrix.add(2, 2);
  EXPECT_EQ(matrix.total(), 4u);
  EXPECT_EQ(matrix.count(0, 1), 1u);
  EXPECT_EQ(matrix.count(0, 0), 1u);
  EXPECT_NEAR(matrix.accuracy(), 0.75, 1e-12);
}

TEST(ConfusionMatrix, RecallAndPrecision) {
  ConfusionMatrix matrix(2);
  // class 0: 3 samples, 2 predicted correctly; one class-1 sample
  // misclassified as 0.
  matrix.add(0, 0);
  matrix.add(0, 0);
  matrix.add(0, 1);
  matrix.add(1, 0);
  EXPECT_NEAR(matrix.recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(matrix.precision(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(matrix.recall(1), 0.0, 1e-12);
  EXPECT_NEAR(matrix.macro_recall(), 1.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyClassesGiveZero) {
  ConfusionMatrix matrix(2);
  EXPECT_EQ(matrix.accuracy(), 0.0);
  EXPECT_EQ(matrix.recall(0), 0.0);
  EXPECT_EQ(matrix.precision(0), 0.0);
}

TEST(ConfusionMatrix, ValidatesLabels) {
  ConfusionMatrix matrix(2);
  EXPECT_THROW(matrix.add(2, 0), std::invalid_argument);
  EXPECT_THROW(matrix.add(0, -1), std::invalid_argument);
  EXPECT_THROW((void)matrix.count(0, 2), std::invalid_argument);
}

TEST(ConfusionMatrix, EvaluateOverModel) {
  const auto fixture = test::make_encoded_fixture(3, 512, 10, 5, 40, 1);
  const train::BaselineTrainer trainer;
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  const ConfusionMatrix matrix =
      evaluate_confusion(*result.model, fixture.test);
  EXPECT_EQ(matrix.total(), fixture.test.size());
  EXPECT_NEAR(matrix.accuracy(), result.model->accuracy(fixture.test),
              1e-12);
}

TEST(Presets, Table2ValuesMatchPaper) {
  const auto mnist = lehdc_preset(data::BenchmarkId::kMnist);
  EXPECT_FLOAT_EQ(mnist.weight_decay, 0.05f);
  EXPECT_FLOAT_EQ(mnist.learning_rate, 0.01f);
  EXPECT_EQ(mnist.batch_size, 64u);
  EXPECT_FLOAT_EQ(mnist.dropout_rate, 0.5f);
  EXPECT_EQ(mnist.epochs, 100u);

  const auto fashion = lehdc_preset(data::BenchmarkId::kFashionMnist);
  EXPECT_FLOAT_EQ(fashion.weight_decay, 0.03f);
  EXPECT_FLOAT_EQ(fashion.learning_rate, 0.1f);
  EXPECT_EQ(fashion.batch_size, 256u);
  EXPECT_FLOAT_EQ(fashion.dropout_rate, 0.3f);
  EXPECT_EQ(fashion.epochs, 200u);

  const auto cifar = lehdc_preset(data::BenchmarkId::kCifar10);
  EXPECT_FLOAT_EQ(cifar.learning_rate, 0.001f);
  EXPECT_EQ(cifar.batch_size, 512u);

  const auto isolet = lehdc_preset(data::BenchmarkId::kIsolet);
  EXPECT_EQ(isolet.batch_size, 64u);
  EXPECT_EQ(isolet.epochs, 100u);
}

TEST(Presets, Table1ConfigEncodesSec5Settings) {
  const auto cfg = table1_config(data::BenchmarkId::kMnist,
                                 core::Strategy::kRetraining, 10000, 1);
  EXPECT_FLOAT_EQ(cfg.retrain.alpha, 0.05f);
  EXPECT_FLOAT_EQ(cfg.retrain.alpha_first, 1.5f);
  EXPECT_EQ(cfg.retrain.iterations, 150u);
  EXPECT_EQ(cfg.multimodel.models_per_class, 64u);
  EXPECT_EQ(cfg.dim, 10000u);
  EXPECT_EQ(cfg.strategy, core::Strategy::kRetraining);
}

TEST(Presets, Table1StrategiesInRowOrder) {
  const auto strategies = table1_strategies();
  ASSERT_EQ(strategies.size(), 4u);
  EXPECT_EQ(strategies[0], core::Strategy::kBaseline);
  EXPECT_EQ(strategies[1], core::Strategy::kMultiModel);
  EXPECT_EQ(strategies[2], core::Strategy::kRetraining);
  EXPECT_EQ(strategies[3], core::Strategy::kLeHdc);
}

data::TrainTestSplit tiny_split() {
  data::SyntheticConfig cfg;
  cfg.feature_count = 16;
  cfg.class_count = 2;
  cfg.train_count = 60;
  cfg.test_count = 24;
  cfg.class_separation = 1.5;
  cfg.noise_stddev = 0.15;
  cfg.prototypes_per_class = 1;
  cfg.seed = 4;
  return generate_synthetic(cfg);
}

core::PipelineConfig tiny_config(core::Strategy strategy) {
  core::PipelineConfig cfg;
  cfg.dim = 256;
  cfg.seed = 5;
  cfg.strategy = strategy;
  cfg.lehdc.epochs = 5;
  cfg.lehdc.batch_size = 8;
  cfg.retrain.iterations = 5;
  cfg.multimodel.models_per_class = 2;
  cfg.multimodel.epochs = 3;
  return cfg;
}

TEST(Experiment, RunTrialsAggregates) {
  const auto split = tiny_split();
  const auto outcome =
      run_trials(split, tiny_config(core::Strategy::kBaseline), 3);
  EXPECT_EQ(outcome.strategy, "Baseline");
  EXPECT_EQ(outcome.test_accuracy.count, 3u);
  EXPECT_GT(outcome.test_accuracy.mean, 80.0);  // percent
  EXPECT_GE(outcome.test_accuracy.stddev, 0.0);
}

TEST(Experiment, RunTrialsValidates) {
  const auto split = tiny_split();
  EXPECT_THROW(
      (void)run_trials(split, tiny_config(core::Strategy::kBaseline), 0),
      std::invalid_argument);
}

TEST(Experiment, CompareStrategiesKeepsOrder) {
  const auto split = tiny_split();
  const auto outcomes = compare_strategies(
      split,
      {tiny_config(core::Strategy::kBaseline),
       tiny_config(core::Strategy::kLeHdc)},
      1);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].strategy, "Baseline");
  EXPECT_EQ(outcomes[1].strategy, "LeHDC");
}

TEST(Experiment, SharedEncodingMatchesSeparateEncoding) {
  const auto split = tiny_split();
  const auto shared = compare_strategies_shared_encoding(
      split, {tiny_config(core::Strategy::kBaseline)}, 2);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_GT(shared[0].test_accuracy.mean, 80.0);
}

TEST(Experiment, SharedEncodingRejectsMixedEncoders) {
  const auto split = tiny_split();
  auto a = tiny_config(core::Strategy::kBaseline);
  auto b = tiny_config(core::Strategy::kLeHdc);
  b.dim = 128;
  EXPECT_THROW(
      (void)compare_strategies_shared_encoding(split, {a, b}, 1),
      std::invalid_argument);
}

TEST(Resource, LeHdcMatchesBaselineExactly) {
  ResourceParams params;
  const auto baseline =
      estimate_resources(core::Strategy::kBaseline, params);
  const auto lehdc = estimate_resources(core::Strategy::kLeHdc, params);
  const auto retraining =
      estimate_resources(core::Strategy::kRetraining, params);
  EXPECT_EQ(lehdc.model_bits, baseline.model_bits);
  EXPECT_EQ(lehdc.inference_word_ops, baseline.inference_word_ops);
  EXPECT_EQ(retraining.model_bits, baseline.model_bits);
}

TEST(Resource, MultiModelScalesWithEnsembleSize) {
  ResourceParams params;
  params.models_per_class = 64;
  const auto baseline =
      estimate_resources(core::Strategy::kBaseline, params);
  const auto multi = estimate_resources(core::Strategy::kMultiModel, params);
  EXPECT_EQ(multi.model_bits, 64u * baseline.model_bits);
  EXPECT_EQ(multi.inference_word_ops, 64u * baseline.inference_word_ops);
  EXPECT_EQ(multi.encoder_bits, baseline.encoder_bits);
}

TEST(Resource, NonBinaryScalesWithComponentWidth) {
  ResourceParams params;
  params.nonbinary_bits = 32;
  const auto baseline =
      estimate_resources(core::Strategy::kBaseline, params);
  const auto nonbinary =
      estimate_resources(core::Strategy::kNonBinary, params);
  EXPECT_EQ(nonbinary.model_bits, 32u * baseline.model_bits);
}

TEST(Report, SeriesCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/series.csv";
  std::vector<Series> series(2);
  series[0].name = "basic";
  series[1].name = "enhanced";
  for (std::size_t e = 0; e < 3; ++e) {
    series[0].points.push_back({e, 0.5 + 0.1 * static_cast<double>(e),
                                0.4 + 0.1 * static_cast<double>(e), 0.0});
    series[1].points.push_back({e, 0.6, 0.5, 0.0});
  }
  write_series_csv(path, series);
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "epoch,basic_train_accuracy,basic_test_accuracy,"
            "enhanced_train_accuracy,enhanced_test_accuracy");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(Report, CsvHandlesMissingEpochs) {
  const std::string path = ::testing::TempDir() + "/sparse.csv";
  std::vector<Series> series(2);
  series[0].name = "a";
  series[0].points.push_back({0, 0.5, 0.5, 0.0});
  series[1].name = "b";
  series[1].points.push_back({1, 0.6, 0.6, 0.0});
  write_series_csv(path, series);
  std::ifstream in(path);
  std::string line;
  (void)std::getline(in, line);  // header
  ASSERT_TRUE(std::getline(in, line));
  // Epoch 0: series b has no point → empty trailing cells.
  EXPECT_EQ(line.substr(0, 2), "0,");
  EXPECT_EQ(line.back(), ',');
  std::remove(path.c_str());
}

TEST(Report, PrintSeriesWritesCallerStream) {
  std::vector<Series> series(1);
  series[0].name = "only";
  series[0].points.push_back({0, 0.5, 0.4, 0.1});
  series[0].points.push_back({1, 0.6, 0.5, 0.1});
  std::ostringstream out;
  print_series(out, series, 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("only"), std::string::npos);
  EXPECT_NE(text.find("epoch"), std::string::npos);
}

}  // namespace
}  // namespace lehdc::eval
