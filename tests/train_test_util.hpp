// Shared helpers for trainer tests: small encoded datasets built directly
// in hypervector space (class prototype + bit-flip noise), avoiding the
// cost of the full encoder in unit tests.
#pragma once

#include <cstdint>
#include <vector>

#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"
#include "util/rng.hpp"

namespace lehdc::test {

struct EncodedFixture {
  hdc::EncodedDataset train;
  hdc::EncodedDataset test;
  std::vector<hv::BitVector> prototypes;
};

/// Builds train/test sets where class k's samples are `noise_flips`-bit
/// perturbations of a random prototype. Separable when noise_flips << D/4.
inline EncodedFixture make_encoded_fixture(std::size_t classes,
                                           std::size_t dim,
                                           std::size_t train_per_class,
                                           std::size_t test_per_class,
                                           std::size_t noise_flips,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  EncodedFixture fixture{hdc::EncodedDataset(dim, classes),
                         hdc::EncodedDataset(dim, classes),
                         {}};
  for (std::size_t k = 0; k < classes; ++k) {
    fixture.prototypes.push_back(hv::BitVector::random(dim, rng));
  }
  const auto draw = [&](std::size_t k) {
    hv::BitVector sample = fixture.prototypes[k];
    sample.flip_random(noise_flips, rng);
    return sample;
  };
  for (std::size_t k = 0; k < classes; ++k) {
    for (std::size_t i = 0; i < train_per_class; ++i) {
      fixture.train.add(draw(k), static_cast<int>(k));
    }
    for (std::size_t i = 0; i < test_per_class; ++i) {
      fixture.test.add(draw(k), static_cast<int>(k));
    }
  }
  return fixture;
}

/// A deliberately multi-modal fixture: each class has two distant
/// prototypes, so the Eq. 2 centroid is weak but the classes remain
/// separable — the regime where learned training dominates.
inline EncodedFixture make_multimodal_fixture(std::size_t classes,
                                              std::size_t dim,
                                              std::size_t train_per_mode,
                                              std::size_t test_per_mode,
                                              std::size_t noise_flips,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  EncodedFixture fixture{hdc::EncodedDataset(dim, classes),
                         hdc::EncodedDataset(dim, classes),
                         {}};
  std::vector<std::vector<hv::BitVector>> modes(classes);
  for (std::size_t k = 0; k < classes; ++k) {
    modes[k].push_back(hv::BitVector::random(dim, rng));
    modes[k].push_back(hv::BitVector::random(dim, rng));
    fixture.prototypes.push_back(modes[k][0]);
  }
  const auto draw = [&](std::size_t k, std::size_t m) {
    hv::BitVector sample = modes[k][m];
    sample.flip_random(noise_flips, rng);
    return sample;
  };
  for (std::size_t k = 0; k < classes; ++k) {
    for (std::size_t m = 0; m < 2; ++m) {
      for (std::size_t i = 0; i < train_per_mode; ++i) {
        fixture.train.add(draw(k, m), static_cast<int>(k));
      }
      for (std::size_t i = 0; i < test_per_mode; ++i) {
        fixture.test.add(draw(k, m), static_cast<int>(k));
      }
    }
  }
  return fixture;
}

}  // namespace lehdc::test

#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"

namespace lehdc::test {

/// A genuinely hard fixture: raw prototype-mixture features (low class
/// separation, several sub-clusters) run through the real record encoder.
/// The Eq. 2 centroid lands well below 100% here while learned training
/// has headroom — the regime the paper's comparisons live in.
inline EncodedFixture make_hard_fixture(std::uint64_t seed,
                                        std::size_t dim = 512) {
  data::SyntheticConfig cfg;
  cfg.feature_count = 48;
  cfg.class_count = 4;
  cfg.train_count = 320;
  cfg.test_count = 120;
  cfg.prototypes_per_class = 5;
  cfg.shared_atoms = 8;
  cfg.class_separation = 0.25;
  cfg.intra_class_spread = 0.9;
  cfg.noise_stddev = 0.55;
  cfg.smoothing_window = 1;
  cfg.seed = seed;
  const data::TrainTestSplit split = data::generate_synthetic(cfg);

  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = dim;
  encoder_cfg.feature_count = cfg.feature_count;
  encoder_cfg.seed = seed + 1;
  const hdc::RecordEncoder encoder(encoder_cfg);
  return EncodedFixture{hdc::encode_dataset(encoder, split.train),
                        hdc::encode_dataset(encoder, split.test),
                        {}};
}

}  // namespace lehdc::test
