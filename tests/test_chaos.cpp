// Chaos-scenario harness (src/chaos/). Every scenario in the matrix runs
// against a real InferenceServer in virtual time (FakeClock + manual
// dispatch — no sleeps, no wall-clock), so each test asserts exact,
// reproducible outcomes: zero invariant violations, byte-identical
// reports across runs, and the scenario-specific failure signatures
// (deadline sheds in the storm, queue-full sheds in the burst, both
// tenants alive through the flood).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "chaos/arrival.hpp"
#include "chaos/scenario.hpp"
#include "chaos/scenarios.hpp"
#include "obs/report.hpp"

namespace lehdc {
namespace {

chaos::ScenarioResult run_named(const chaos::NamedScenario& named,
                                double scale = 0.25) {
  return chaos::run_scenario(named.configure(scale), named.invariants);
}

// ---------------------------------------------------------------- arrivals --

TEST(Arrival, SortedWithinHorizonAndDeterministic) {
  chaos::ArrivalConfig config;
  config.process = chaos::ArrivalProcess::kBursty;
  config.rate_per_sec = 5000;
  config.horizon_us = 100'000;
  const auto times = chaos::arrival_times(config);
  ASSERT_FALSE(times.empty());
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
  EXPECT_LT(times.back(), config.horizon_us);
  EXPECT_EQ(times, chaos::arrival_times(config));
}

TEST(Arrival, BurstyConcentratesLoadInTheBurstHalf) {
  chaos::ArrivalConfig config;
  config.process = chaos::ArrivalProcess::kBursty;
  config.rate_per_sec = 10'000;
  config.burst_factor = 10;
  config.period_us = 20'000;
  config.horizon_us = 200'000;
  std::size_t in_burst = 0;
  const auto times = chaos::arrival_times(config);
  for (const std::uint64_t t : times) {
    in_burst += (t % config.period_us) < config.period_us / 2 ? 1 : 0;
  }
  // Burst half runs at 10x the trough's rate; the split cannot be close.
  EXPECT_GT(in_burst * 10, times.size() * 8);
}

TEST(Arrival, OverloadOutpacesUniformAtTheSameBaseRate) {
  chaos::ArrivalConfig config;
  config.rate_per_sec = 5000;
  config.horizon_us = 100'000;
  config.process = chaos::ArrivalProcess::kUniform;
  const auto uniform = chaos::arrival_times(config);
  config.process = chaos::ArrivalProcess::kOverload;
  const auto overload = chaos::arrival_times(config);
  EXPECT_GT(overload.size(), 4 * uniform.size());
}

TEST(Arrival, ValidatesConfig) {
  chaos::ArrivalConfig config;
  config.rate_per_sec = 0;
  EXPECT_THROW((void)chaos::arrival_times(config), std::invalid_argument);
  config = {};
  config.burst_factor = 0.5;
  EXPECT_THROW((void)chaos::arrival_times(config), std::invalid_argument);
}

// ------------------------------------------------------------ full matrix --

TEST(ChaosMatrix, EveryScenarioUpholdsItsInvariants) {
  for (const chaos::NamedScenario& named : chaos::scenario_matrix()) {
    ASSERT_FALSE(named.invariants.empty()) << named.name;
    const chaos::ScenarioResult result = run_named(named);
    EXPECT_TRUE(result.violations.empty())
        << named.name << ": " << result.violations.front();
    EXPECT_GT(result.submitted, 0u) << named.name;
    EXPECT_EQ(result.submitted, result.served + result.rejected)
        << named.name;
  }
}

TEST(ChaosMatrix, ReportsAreByteIdenticalAcrossRuns) {
  for (const chaos::NamedScenario& named : chaos::scenario_matrix()) {
    const chaos::ScenarioResult first = run_named(named);
    const chaos::ScenarioResult second = run_named(named);
    EXPECT_EQ(first.report.dump(2), second.report.dump(2)) << named.name;
  }
}

TEST(ChaosMatrix, ReportsValidateAgainstTheMetricsSchema) {
  for (const chaos::NamedScenario& named : chaos::scenario_matrix()) {
    const chaos::ScenarioResult result = run_named(named);
    EXPECT_EQ(obs::validate_metrics_json(result.report), "") << named.name;
  }
}

// ------------------------------------------------- scenario-specific bite --

TEST(ChaosScenario, DeadlineStormShedsWithTypedDeadlineRejects) {
  const chaos::ScenarioResult result =
      run_named(chaos::scenario_by_name("deadline_storm"));
  EXPECT_GT(result.rejected, 0u);
  EXPECT_GT(result.reject_reasons.at("deadline_exceeded"), 0u);
  EXPECT_GT(result.served, 0u);  // a storm sheds; it must not blackout
}

TEST(ChaosScenario, BurstyOverloadShedsQueueFullAndStaysBounded) {
  const chaos::NamedScenario& named =
      chaos::scenario_by_name("bursty_overload");
  const chaos::ScenarioResult result = run_named(named);
  EXPECT_GT(result.reject_reasons.at("queue_full"), 0u);
  EXPECT_LE(result.peak_queue_depth,
            named.configure(0.25).batcher.queue_capacity);
}

TEST(ChaosScenario, StarvedTenantStillGetsServedUnderTheFlood) {
  const chaos::ScenarioResult result =
      run_named(chaos::scenario_by_name("tenant_starvation"));
  ASSERT_EQ(result.tenants.size(), 2u);
  for (const chaos::TenantOutcome& outcome : result.tenants) {
    EXPECT_GT(outcome.submitted, 0u) << outcome.id;
    EXPECT_GT(outcome.served, 0u) << outcome.id;
  }
  // The flood itself must be the one shedding.
  EXPECT_GT(result.reject_reasons.at("queue_full"), 0u);
}

TEST(ChaosScenario, HotReloadUnderFireNeverLeaksAcrossGenerations) {
  const chaos::ScenarioResult result =
      run_named(chaos::scenario_by_name("hot_reload_under_fire"));
  for (const chaos::TenantOutcome& outcome : result.tenants) {
    EXPECT_EQ(outcome.label_mismatches, 0u) << outcome.id;
  }
}

TEST(ChaosScenario, ServedAccuracyTracksOfflineThroughLiveBitErrors) {
  // Sweep BER through the live server: at every point the served labels
  // must match the corrupted generation's own predictions exactly, so
  // served accuracy equals offline accuracy — the serving stack adds no
  // cliff on top of the fault model.
  const chaos::NamedScenario& named =
      chaos::scenario_by_name("ber_live_injection");
  for (const double ber : {0.0, 0.05, 0.4}) {
    chaos::ScenarioConfig config = named.configure(0.25);
    config.model_ber = ber;
    const chaos::ScenarioResult result =
        chaos::run_scenario(config, named.invariants);
    EXPECT_TRUE(result.violations.empty())
        << "ber=" << ber << ": " << result.violations.front();
    EXPECT_DOUBLE_EQ(result.served_accuracy, result.offline_accuracy)
        << "ber=" << ber;
  }
}

TEST(ChaosScenario, OnlineDriftRecoveryHealsAdaptiveAndDecaysFrozen) {
  // Two tenants share one model and one mid-run prototype shift; only
  // "adaptive" runs the online sidecar. The invariant demands the pair
  // diverge: the adaptive tenant's post-drift tail recovers to >= 90% of
  // its pre-drift accuracy through feedback-driven blue-green flips while
  // the frozen control decays — proving both that the drift bit and that
  // the online path healed it.
  const chaos::NamedScenario& named =
      chaos::scenario_by_name("online_drift_recovery");
  const chaos::ScenarioConfig config = named.configure(0.25);
  const chaos::ScenarioResult result =
      chaos::run_scenario(config, named.invariants);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front();
  ASSERT_EQ(result.tenants.size(), 2u);
  const chaos::TenantOutcome* adaptive = nullptr;
  const chaos::TenantOutcome* frozen = nullptr;
  for (const chaos::TenantOutcome& outcome : result.tenants) {
    (outcome.id == "adaptive" ? adaptive : frozen) = &outcome;
  }
  ASSERT_NE(adaptive, nullptr);
  ASSERT_NE(frozen, nullptr);

  EXPECT_GT(adaptive->feedback_accepted, 0u);
  EXPECT_GT(adaptive->flips, 0u);
  EXPECT_GE(adaptive->post_drift_accuracy,
            config.drift_recovery_fraction * adaptive->pre_drift_accuracy);
  EXPECT_EQ(frozen->feedback_accepted, 0u);
  EXPECT_EQ(frozen->flips, 0u);
  EXPECT_LE(frozen->post_drift_accuracy,
            frozen->pre_drift_accuracy - config.drift_decay_min);
  EXPECT_EQ(adaptive->accuracy_curve.size(), config.curve_buckets);
  EXPECT_EQ(frozen->accuracy_curve.size(), config.curve_buckets);
}

TEST(ChaosScenario, RunScenarioRefusesAssertionFreeRuns) {
  const chaos::NamedScenario& named =
      chaos::scenario_by_name("steady_multi_tenant");
  EXPECT_THROW((void)chaos::run_scenario(named.configure(0.25), {}),
               std::invalid_argument);
}

TEST(ChaosScenario, UnknownScenarioNameThrows) {
  EXPECT_THROW((void)chaos::scenario_by_name("no_such_scenario"),
               std::invalid_argument);
}

}  // namespace
}  // namespace lehdc
