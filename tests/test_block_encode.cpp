// Block-encode surface parity: the rematerialized item-memory path must be
// bit-identical to the materialized one, the fused encode→score kernel must
// be bit-identical to encode-then-score, and both invariants must hold at
// paper scale (D = 10000), across odd word-range sizes, odd sample counts,
// every classifier kind and every worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "hdc/batch_scorer.hpp"
#include "hdc/block_encoder.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hdc/encoder.hpp"
#include "hdc/query_batch.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lehdc {
namespace {

const std::size_t kWorkerCounts[] = {1, 4, 0};

data::Dataset random_dataset(std::size_t samples, std::size_t features,
                             std::size_t classes, util::Rng& rng) {
  data::Dataset dataset(features, classes);
  std::vector<float> row(features);
  for (std::size_t i = 0; i < samples; ++i) {
    for (float& v : row) {
      v = rng.next_float();
    }
    dataset.add_sample(row, static_cast<int>(i % classes));
  }
  return dataset;
}

hdc::RecordEncoder make_encoder(std::size_t dim, std::size_t features,
                                std::uint64_t seed = 17) {
  hdc::RecordEncoderConfig config;
  config.dim = dim;
  config.feature_count = features;
  config.levels = 16;
  config.seed = seed;
  return hdc::RecordEncoder(config);
}

// Drains a cursor in `step`-word ranges into per-sample word vectors.
std::vector<std::vector<std::uint64_t>> drain_cursor(
    hdc::BlockEncodeCursor& cursor, std::size_t count, std::size_t word_count,
    std::size_t step) {
  std::vector<std::vector<std::uint64_t>> out(
      count, std::vector<std::uint64_t>(word_count, ~std::uint64_t{0}));
  std::vector<std::uint64_t> buffer(count * step);
  std::size_t word_pos = 0;
  while (const std::size_t produced = cursor.encode_words(step, buffer)) {
    EXPECT_LE(word_pos + produced, word_count) << "cursor overran";
    for (std::size_t s = 0; s < count; ++s) {
      std::memcpy(out[s].data() + word_pos, buffer.data() + s * produced,
                  produced * sizeof(std::uint64_t));
    }
    word_pos += produced;
  }
  EXPECT_EQ(word_pos, word_count) << "cursor stopped early";
  EXPECT_EQ(cursor.encode_words(step, buffer), 0u) << "exhausted cursor";
  return out;
}

std::vector<hv::BitVector> random_hvs(std::size_t count, std::size_t dim,
                                      util::Rng& rng) {
  std::vector<hv::BitVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(hv::BitVector::random(dim, rng));
  }
  return out;
}

// ----------------------------------------------------- cursor bit parity ---

TEST(BlockEncodeCursor, BothPathsMatchPerSampleEncodeAcrossShapes) {
  util::Rng rng(101);
  // Dims straddling word boundaries (tail masking) and sample counts
  // straddling the 64-sample block size.
  for (const std::size_t dim : {std::size_t{65}, std::size_t{128},
                                std::size_t{1000}}) {
    const auto encoder = make_encoder(dim, 7);
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{5}, std::size_t{64}, std::size_t{67}}) {
      const auto dataset = random_dataset(count, 7, 3, rng);
      std::vector<hv::BitVector> expected;
      for (std::size_t i = 0; i < count; ++i) {
        expected.push_back(encoder.encode(dataset.sample(i)));
      }
      // Odd word steps exercise ragged final ranges; word_count() covers
      // the single-range case.
      for (const std::size_t step :
           {std::size_t{1}, std::size_t{3}, std::size_t{7},
            encoder.word_count()}) {
        for (const hdc::EncodePath path : {hdc::EncodePath::kMaterialized,
                                           hdc::EncodePath::kRematerialized}) {
          auto cursor = encoder.make_cursor(path);
          cursor->begin(dataset.rows(0, count), count);
          const auto words =
              drain_cursor(*cursor, count, encoder.word_count(), step);
          for (std::size_t s = 0; s < count; ++s) {
            ASSERT_EQ(std::memcmp(words[s].data(),
                                  expected[s].words().data(),
                                  encoder.word_count() *
                                      sizeof(std::uint64_t)),
                      0)
                << "dim=" << dim << " count=" << count << " step=" << step
                << " path=" << static_cast<int>(path) << " sample=" << s;
          }
        }
      }
    }
  }
}

TEST(BlockEncodeCursor, PaperScaleDim10000Parity) {
  util::Rng rng(103);
  const std::size_t dim = 10000;  // 157 words administered, ragged tail
  const auto encoder = make_encoder(dim, 12);
  const std::size_t count = 9;
  const auto dataset = random_dataset(count, 12, 2, rng);
  std::vector<hv::BitVector> expected;
  for (std::size_t i = 0; i < count; ++i) {
    expected.push_back(encoder.encode(dataset.sample(i)));
  }
  const std::size_t range =
      hdc::block_range_words(encoder.feature_count(), encoder.word_count());
  for (const hdc::EncodePath path : {hdc::EncodePath::kMaterialized,
                                     hdc::EncodePath::kRematerialized}) {
    auto cursor = encoder.make_cursor(path);
    cursor->begin(dataset.rows(0, count), count);
    const auto words = drain_cursor(*cursor, count, encoder.word_count(),
                                    range);
    for (std::size_t s = 0; s < count; ++s) {
      ASSERT_EQ(std::memcmp(words[s].data(), expected[s].words().data(),
                            encoder.word_count() * sizeof(std::uint64_t)),
                0)
          << "path=" << static_cast<int>(path) << " sample=" << s;
    }
  }
}

TEST(BlockEncodeCursor, CursorIsReusableAcrossBlocks) {
  util::Rng rng(107);
  const auto encoder = make_encoder(320, 5);
  const auto dataset = random_dataset(40, 5, 2, rng);
  auto cursor = encoder.make_cursor(hdc::EncodePath::kRematerialized);
  for (const auto& [begin, count] :
       {std::pair<std::size_t, std::size_t>{0, 16},
        std::pair<std::size_t, std::size_t>{16, 3},
        std::pair<std::size_t, std::size_t>{19, 21}}) {
    cursor->begin(dataset.rows(begin, count), count);
    const auto words = drain_cursor(*cursor, count, encoder.word_count(), 4);
    for (std::size_t s = 0; s < count; ++s) {
      const hv::BitVector expected = encoder.encode(dataset.sample(begin + s));
      ASSERT_EQ(std::memcmp(words[s].data(), expected.words().data(),
                            encoder.word_count() * sizeof(std::uint64_t)),
                0)
          << "begin=" << begin << " s=" << s;
    }
  }
}

// --------------------------------------------------- path resolution etc ---

TEST(BlockEncode, ResolveEncodePathPassesNonAutoThrough) {
  EXPECT_EQ(hdc::resolve_encode_path(hdc::EncodePath::kMaterialized, 1u << 20),
            hdc::EncodePath::kMaterialized);
  EXPECT_EQ(hdc::resolve_encode_path(hdc::EncodePath::kRematerialized, 1),
            hdc::EncodePath::kRematerialized);
  // kAuto must resolve to a concrete path either way (the concrete choice
  // depends on LEHDC_ENCODE_PATH, so only "not kAuto" is portable).
  EXPECT_NE(hdc::resolve_encode_path(hdc::EncodePath::kAuto, 1),
            hdc::EncodePath::kAuto);
  EXPECT_NE(hdc::resolve_encode_path(hdc::EncodePath::kAuto, 4096),
            hdc::EncodePath::kAuto);
}

TEST(BlockEncode, BlockRangeWordsIsBoundedAndCacheSized) {
  // Never exceeds the hypervector, never below the 8-word floor (unless the
  // hypervector itself is shorter), and at paper scale stays within the
  // 256 KiB position-scratch budget.
  EXPECT_EQ(hdc::block_range_words(784, 157), 41u);
  EXPECT_LE(hdc::block_range_words(784, 157) * 784 * sizeof(std::uint64_t),
            std::size_t{256 * 1024});
  EXPECT_EQ(hdc::block_range_words(1, 157), 157u);      // capped at D words
  EXPECT_EQ(hdc::block_range_words(1u << 20, 157), 8u); // floored
  EXPECT_EQ(hdc::block_range_words(0, 157), 157u);      // no div-by-zero
}

TEST(BlockEncode, RematerializedBytesPerSampleIsAmortized) {
  const auto encoder = make_encoder(1000, 20);
  const std::size_t materialized =
      encoder.encode_bytes_per_sample(hdc::EncodePath::kMaterialized, 64);
  const std::size_t rematerialized =
      encoder.encode_bytes_per_sample(hdc::EncodePath::kRematerialized, 64);
  // Materialized streams the whole position memory per sample.
  EXPECT_EQ(materialized,
            20u * encoder.word_count() * sizeof(std::uint64_t));
  // Rematerialized regenerates it once per 64-sample block.
  EXPECT_EQ(rematerialized, materialized / 64);
}

// ------------------------------------------------ fused encode→score ------

TEST(BatchScorerFused, BinaryFusedMatchesEncodeThenScore) {
  util::Rng rng(109);
  const std::size_t dim = 503;
  const auto encoder = make_encoder(dim, 9);
  const hdc::BinaryClassifier classifier(random_hvs(6, dim, rng));
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{200}}) {
    const auto dataset = random_dataset(batch, 9, 6, rng);
    // Reference: materialize every hypervector, score through the classic
    // batched path.
    std::vector<hv::BitVector> encoded;
    for (std::size_t i = 0; i < batch; ++i) {
      encoded.push_back(encoder.encode(dataset.sample(i)));
    }
    for (const std::size_t workers : kWorkerCounts) {
      util::ThreadPool pool(workers);
      const hdc::BatchScorer scorer(classifier, &pool);
      std::vector<int> reference(batch, -1);
      scorer.predict_batch(encoded, reference);
      for (const hdc::EncodePath path : {hdc::EncodePath::kMaterialized,
                                         hdc::EncodePath::kRematerialized,
                                         hdc::EncodePath::kAuto}) {
        std::vector<int> fused(batch, -2);
        scorer.predict_queries(hdc::QueryBatch(dataset, encoder, path),
                               fused);
        ASSERT_EQ(fused, reference)
            << "batch=" << batch << " workers=" << workers
            << " path=" << static_cast<int>(path);
      }
    }
  }
}

TEST(BatchScorerFused, EnsembleFusedMatchesEncodeThenScore) {
  util::Rng rng(113);
  const std::size_t dim = 777;
  const auto encoder = make_encoder(dim, 6);
  std::vector<std::vector<hv::BitVector>> models;
  for (std::size_t k = 0; k < 4; ++k) {
    models.push_back(random_hvs(3, dim, rng));
  }
  const hdc::EnsembleClassifier classifier(std::move(models));
  const auto dataset = random_dataset(150, 6, 3, rng);
  std::vector<hv::BitVector> encoded;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    encoded.push_back(encoder.encode(dataset.sample(i)));
  }
  for (const std::size_t workers : kWorkerCounts) {
    util::ThreadPool pool(workers);
    const hdc::BatchScorer scorer(classifier, &pool);
    std::vector<int> reference(dataset.size(), -1);
    scorer.predict_batch(encoded, reference);
    std::vector<int> fused(dataset.size(), -2);
    scorer.predict_queries(
        hdc::QueryBatch(dataset, encoder, hdc::EncodePath::kRematerialized),
        fused);
    ASSERT_EQ(fused, reference) << "workers=" << workers;
  }
}

TEST(BatchScorerFused, NonBinaryBlockedPathMatchesEncodeThenScore) {
  // Cosine scoring needs the full query hypervector, so the non-binary kind
  // takes the blocked (materialize-per-block) path — predictions must still
  // be identical on every requested path.
  util::Rng rng(127);
  const std::size_t dim = 500;
  const auto encoder = make_encoder(dim, 8);
  std::vector<hv::IntVector> classes;
  for (std::size_t k = 0; k < 5; ++k) {
    hv::IntVector accumulator(dim);
    for (std::size_t s = 0; s < 5; ++s) {
      accumulator.add(hv::BitVector::random(dim, rng));
    }
    classes.push_back(std::move(accumulator));
  }
  const hdc::NonBinaryClassifier classifier(std::move(classes));
  const auto dataset = random_dataset(100, 8, 5, rng);
  std::vector<hv::BitVector> encoded;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    encoded.push_back(encoder.encode(dataset.sample(i)));
  }
  for (const std::size_t workers : kWorkerCounts) {
    util::ThreadPool pool(workers);
    const hdc::BatchScorer scorer(classifier, &pool);
    std::vector<int> reference(dataset.size(), -1);
    scorer.predict_batch(encoded, reference);
    for (const hdc::EncodePath path : {hdc::EncodePath::kMaterialized,
                                       hdc::EncodePath::kRematerialized}) {
      std::vector<int> out(dataset.size(), -2);
      scorer.predict_queries(hdc::QueryBatch(dataset, encoder, path), out);
      ASSERT_EQ(out, reference)
          << "workers=" << workers << " path=" << static_cast<int>(path);
    }
  }
}

TEST(BatchScorerFused, PaperScaleFusedParity) {
  util::Rng rng(131);
  const std::size_t dim = 10000;
  const auto encoder = make_encoder(dim, 20);
  const hdc::BinaryClassifier classifier(random_hvs(10, dim, rng));
  const auto dataset = random_dataset(70, 20, 10, rng);
  std::vector<hv::BitVector> encoded;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    encoded.push_back(encoder.encode(dataset.sample(i)));
  }
  const hdc::BatchScorer scorer(classifier);
  std::vector<int> reference(dataset.size(), -1);
  scorer.predict_batch(encoded, reference);
  std::vector<int> fused(dataset.size(), -2);
  scorer.predict_queries(
      hdc::QueryBatch(dataset, encoder, hdc::EncodePath::kRematerialized),
      fused);
  EXPECT_EQ(fused, reference);
}

TEST(BatchScorerFused, StatsAccountEncodeTraffic) {
  util::Rng rng(137);
  const std::size_t dim = 1000;
  const auto encoder = make_encoder(dim, 16);
  const hdc::BinaryClassifier classifier(random_hvs(4, dim, rng));
  const hdc::BatchScorer scorer(classifier);
  const auto dataset = random_dataset(128, 16, 4, rng);

  hdc::PredictStats remat;
  std::vector<int> out(dataset.size());
  scorer.predict_queries(
      hdc::QueryBatch(dataset, encoder, hdc::EncodePath::kRematerialized),
      out, &remat);
  hdc::PredictStats mat;
  scorer.predict_queries(
      hdc::QueryBatch(dataset, encoder, hdc::EncodePath::kMaterialized), out,
      &mat);

  EXPECT_EQ(remat.samples, dataset.size());
  EXPECT_EQ(mat.samples, dataset.size());
  EXPECT_TRUE(remat.rematerialized);
  EXPECT_FALSE(mat.rematerialized);
  // Materialized streams N·W·8 bytes per sample; rematerialized streams it
  // once per 64-sample block — 2 blocks of 64 here, so exactly 1/64th.
  const std::uint64_t position_bytes =
      16u * encoder.word_count() * sizeof(std::uint64_t);
  EXPECT_EQ(mat.encode_bytes, position_bytes * dataset.size());
  EXPECT_EQ(remat.encode_bytes, position_bytes * 2);
  EXPECT_LT(remat.encode_bytes, mat.encode_bytes);

  // Pre-encoded batches report no encode traffic.
  const auto queries = random_hvs(10, dim, rng);
  hdc::PredictStats pre;
  std::vector<int> pre_out(queries.size());
  scorer.predict_queries(hdc::QueryBatch(queries), pre_out, &pre);
  EXPECT_EQ(pre.encode_bytes, 0u);
  EXPECT_FALSE(pre.rematerialized);
  EXPECT_EQ(pre.samples, queries.size());
}

// ------------------------------------------------- layered surfaces -------

TEST(BlockEncode, EncodeDatasetMatchesPerSampleEncode) {
  util::Rng rng(139);
  const auto encoder = make_encoder(650, 11);
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{63}, std::size_t{130}}) {
    const auto dataset = random_dataset(count, 11, 3, rng);
    const hdc::EncodedDataset encoded = hdc::encode_dataset(encoder, dataset);
    ASSERT_EQ(encoded.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(encoded.hypervector(i), encoder.encode(dataset.sample(i)))
          << "count=" << count << " i=" << i;
    }
  }
}

TEST(PipelineEncodePath, PredictionsIdenticalOnBothPaths) {
  const auto split = data::generate_synthetic([] {
    data::SyntheticConfig config;
    config.feature_count = 10;
    config.class_count = 4;
    config.train_count = 100;
    config.test_count = 90;
    config.seed = 11;
    return config;
  }());
  core::PipelineConfig config;
  config.dim = 512;
  config.strategy = core::Strategy::kBaseline;
  config.encode_path = hdc::EncodePath::kMaterialized;
  core::Pipeline materialized(config);
  materialized.fit(split.train);
  config.encode_path = hdc::EncodePath::kRematerialized;
  core::Pipeline rematerialized(config);
  rematerialized.fit(split.train);

  const std::vector<int> a = materialized.predict_batch(split.test);
  const std::vector<int> b = rematerialized.predict_batch(split.test);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ASSERT_EQ(a[i], materialized.predict(split.test.sample(i))) << "i=" << i;
  }

  const core::EvalResult mat_eval = materialized.evaluate(split.test);
  const core::EvalResult remat_eval = rematerialized.evaluate(split.test);
  EXPECT_EQ(mat_eval.accuracy, remat_eval.accuracy);
  EXPECT_FALSE(mat_eval.rematerialized);
  EXPECT_TRUE(remat_eval.rematerialized);
  EXPECT_LT(remat_eval.encode_bytes, mat_eval.encode_bytes);
}

}  // namespace
}  // namespace lehdc
