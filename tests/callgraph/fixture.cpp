// Synthetic source for the lehdc_callgraph self-tests. This file is NOT
// compiled — tests/callgraph/fixture_facts.json references it by line so
// the checker's inline-suppression lookup has real text to read. Keep the
// line numbers stable or update the facts file.
//
// Line 10 below carries a live alloc violation (no suppression).
// Line 14 carries a throw that IS suppressed by the comment on line 13.

void counter_add_body() {
  do_alloc();  // line 10: operator new reachable from Counter::add

void predict_fused_body() {
  // lehdc-callgraph: allow(throw)
  do_throw();  // line 14: suppressed by the allow(throw) comment above

void micro_batcher_grow() {
  take_lock();  // line 17: transitive lock reachable from MicroBatcher::offer
