#include "hv/generate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hv/similarity.hpp"
#include "util/rng.hpp"

namespace lehdc::hv {
namespace {

TEST(RandomSet, ProducesRequestedCount) {
  util::Rng rng(1);
  const auto set = random_set(5, 128, rng);
  ASSERT_EQ(set.size(), 5u);
  for (const auto& hv : set) {
    EXPECT_EQ(hv.dim(), 128u);
  }
}

TEST(RandomSet, PairsAreQuasiOrthogonal) {
  // Sec. 2: feature position hypervectors must satisfy
  // Hamm(F_i, F_j) ≈ 0.5 for i ≠ j.
  util::Rng rng(2);
  const auto set = random_set(10, 10000, rng);
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      EXPECT_NEAR(normalized_hamming(set[i], set[j]), 0.5, 0.03);
    }
  }
}

TEST(LevelSet, RequiresAtLeastTwoLevels) {
  util::Rng rng(3);
  EXPECT_THROW((void)level_set(1, 100, rng), std::invalid_argument);
}

TEST(LevelSet, RequiresSufficientDimension) {
  util::Rng rng(4);
  EXPECT_THROW((void)level_set(10, 5, rng), std::invalid_argument);
}

TEST(LevelSet, DistancesProportionalToLevelGap) {
  // Sec. 2: Hamm(V_a, V_b) ∝ |a − b|. With disjoint flip slices the
  // proportionality is exact up to rounding of the per-step flip counts.
  util::Rng rng(5);
  const std::size_t levels = 9;
  const std::size_t dim = 8000;
  const auto set = level_set(levels, dim, rng);
  ASSERT_EQ(set.size(), levels);
  const double full =
      normalized_hamming(set.front(), set.back());
  EXPECT_NEAR(full, 0.5, 0.01);
  for (std::size_t gap = 1; gap < levels; ++gap) {
    for (std::size_t i = 0; i + gap < levels; ++i) {
      const double expected =
          full * static_cast<double>(gap) / (levels - 1);
      EXPECT_NEAR(normalized_hamming(set[i], set[i + gap]), expected, 0.01)
          << "levels " << i << " and " << i + gap;
    }
  }
}

TEST(LevelSet, AdjacentLevelsAreHighlyCorrelated) {
  util::Rng rng(6);
  const auto set = level_set(32, 4096, rng);
  for (std::size_t i = 0; i + 1 < set.size(); ++i) {
    EXPECT_LT(normalized_hamming(set[i], set[i + 1]), 0.05);
  }
}

TEST(LevelSet, DistancesAreAdditiveAlongTheChain) {
  // Flip slices are disjoint, so d(0, k) = sum of adjacent distances.
  util::Rng rng(7);
  const auto set = level_set(6, 1000, rng);
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i + 1 < set.size(); ++i) {
    cumulative += BitVector::hamming(set[i], set[i + 1]);
    EXPECT_EQ(BitVector::hamming(set[0], set[i + 1]), cumulative);
  }
}

TEST(LevelSet, MinimumConfiguration) {
  util::Rng rng(8);
  const auto set = level_set(2, 64, rng);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(BitVector::hamming(set[0], set[1]), 32u);
}

}  // namespace
}  // namespace lehdc::hv
