// Tests for dropout, LR schedules and STE binarization.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "nn/binarize.hpp"
#include "nn/dropout.hpp"
#include "nn/schedule.hpp"
#include "util/rng.hpp"

namespace lehdc::nn {
namespace {

TEST(Dropout, RateZeroIsIdentity) {
  Dropout dropout(0.0f);
  util::Rng rng(1);
  Matrix m(4, 4);
  m.fill(2.0f);
  dropout.apply(m, rng);
  for (const float v : m.data()) {
    EXPECT_EQ(v, 2.0f);
  }
}

TEST(Dropout, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Dropout, DropsApproximatelyRateFraction) {
  Dropout dropout(0.3f);
  util::Rng rng(2);
  Matrix m(100, 100);
  m.fill(1.0f);
  dropout.apply(m, rng);
  std::size_t zeros = 0;
  for (const float v : m.data()) {
    zeros += (v == 0.0f) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.02);
}

TEST(Dropout, SurvivorsAreInvertedScaled) {
  Dropout dropout(0.5f);
  util::Rng rng(3);
  Matrix m(10, 10);
  m.fill(3.0f);
  dropout.apply(m, rng);
  for (const float v : m.data()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - 6.0f) < 1e-6f) << v;
  }
}

TEST(Dropout, PreservesExpectedValue) {
  Dropout dropout(0.4f);
  util::Rng rng(4);
  Matrix m(200, 200);
  m.fill(1.0f);
  dropout.apply(m, rng);
  double sum = 0.0;
  for (const float v : m.data()) {
    sum += v;
  }
  EXPECT_NEAR(sum / static_cast<double>(m.size()), 1.0, 0.03);
}

TEST(Dropout, MaskStatisticsMatchRate) {
  const Dropout dropout(0.25f);
  util::Rng rng(5);
  const auto mask = dropout.make_mask(20000, rng);
  std::size_t kept = 0;
  for (const auto bit : mask) {
    kept += bit;
  }
  EXPECT_NEAR(static_cast<double>(kept) / 20000.0, 0.75, 0.02);
}

TEST(Dropout, BackwardZeroesDroppedGradients) {
  std::vector<float> grad{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};
  Dropout::backward(grad, mask, 0.5f);
  EXPECT_EQ(grad[0], 2.0f);  // kept, scaled by 1/(1-0.5)
  EXPECT_EQ(grad[1], 0.0f);
  EXPECT_EQ(grad[2], 6.0f);
  EXPECT_EQ(grad[3], 0.0f);
}

TEST(Dropout, BackwardValidatesSizes) {
  std::vector<float> grad{1.0f};
  const std::vector<std::uint8_t> mask{1, 1};
  EXPECT_THROW(Dropout::backward(grad, mask, 0.5f), std::invalid_argument);
}

TEST(PlateauDecay, KeepsLrWhileImproving) {
  PlateauDecay schedule(0.1f, 0.5f, 2);
  EXPECT_EQ(schedule.observe(1.0), 0.1f);
  EXPECT_EQ(schedule.observe(0.9), 0.1f);
  EXPECT_EQ(schedule.observe(0.8), 0.1f);
  EXPECT_EQ(schedule.decay_count(), 0u);
}

TEST(PlateauDecay, DecaysAfterPatienceBadEpochs) {
  PlateauDecay schedule(0.1f, 0.5f, 2);
  (void)schedule.observe(1.0);
  (void)schedule.observe(1.1);  // bad 1
  const float lr = schedule.observe(1.2);  // bad 2 → decay
  EXPECT_NEAR(lr, 0.05f, 1e-7f);
  EXPECT_EQ(schedule.decay_count(), 1u);
}

TEST(PlateauDecay, ImprovementResetsPatience) {
  PlateauDecay schedule(0.1f, 0.5f, 2);
  (void)schedule.observe(1.0);
  (void)schedule.observe(1.1);   // bad 1
  (void)schedule.observe(0.5);   // improvement resets
  (void)schedule.observe(0.6);   // bad 1 again
  EXPECT_EQ(schedule.learning_rate(), 0.1f);
  (void)schedule.observe(0.7);   // bad 2 → decay
  EXPECT_NEAR(schedule.learning_rate(), 0.05f, 1e-7f);
}

TEST(PlateauDecay, RespectsMinLr) {
  PlateauDecay schedule(0.1f, 0.1f, 1, 0.01f);
  (void)schedule.observe(1.0);
  (void)schedule.observe(2.0);  // decay to 0.01 (clamped)
  (void)schedule.observe(3.0);  // clamped at min
  EXPECT_NEAR(schedule.learning_rate(), 0.01f, 1e-7f);
}

TEST(PlateauDecay, ValidatesConfig) {
  EXPECT_THROW(PlateauDecay(0.0f, 0.5f, 1), std::invalid_argument);
  EXPECT_THROW(PlateauDecay(0.1f, 1.0f, 1), std::invalid_argument);
  EXPECT_THROW(PlateauDecay(0.1f, 0.5f, 0), std::invalid_argument);
}

TEST(StepDecay, DecaysEveryInterval) {
  StepDecay schedule(1.0f, 0.5f, 3);
  EXPECT_EQ(schedule.observe(), 1.0f);
  EXPECT_EQ(schedule.observe(), 1.0f);
  EXPECT_EQ(schedule.observe(), 0.5f);
  EXPECT_EQ(schedule.observe(), 0.5f);
  EXPECT_EQ(schedule.observe(), 0.5f);
  EXPECT_EQ(schedule.observe(), 0.25f);
}

TEST(Binarize, ToFloatProducesSigns) {
  Matrix latent(1, 4);
  latent.at(0, 0) = 0.5f;
  latent.at(0, 1) = -0.5f;
  latent.at(0, 2) = 0.0f;  // sgn(0) = +1
  latent.at(0, 3) = -100.0f;
  Matrix out(1, 4);
  binarize_to_float(latent, out);
  EXPECT_EQ(out.at(0, 0), 1.0f);
  EXPECT_EQ(out.at(0, 1), -1.0f);
  EXPECT_EQ(out.at(0, 2), 1.0f);
  EXPECT_EQ(out.at(0, 3), -1.0f);
}

TEST(Binarize, RowPacksSigns) {
  Matrix latent(2, 3);
  latent.at(1, 0) = -1.0f;
  latent.at(1, 2) = 2.0f;
  const hv::BitVector packed = binarize_row(latent, 1);
  EXPECT_EQ(packed.get(0), -1);
  EXPECT_EQ(packed.get(1), 1);
  EXPECT_EQ(packed.get(2), 1);
  EXPECT_THROW((void)binarize_row(latent, 2), std::invalid_argument);
}

TEST(Binarize, RowsMatchFloatBinarization) {
  util::Rng rng(6);
  Matrix latent(3, 100);
  latent.fill_gaussian(rng, 1.0f);
  const auto rows = binarize_rows(latent);
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < 100; ++j) {
      EXPECT_EQ(rows[k].get(j), latent.at(k, j) < 0.0f ? -1 : 1);
    }
  }
}

TEST(Binarize, ClipLatentClampsRange) {
  Matrix latent(1, 3);
  latent.at(0, 0) = 5.0f;
  latent.at(0, 1) = -5.0f;
  latent.at(0, 2) = 0.3f;
  clip_latent(latent, 1.0f);
  EXPECT_EQ(latent.at(0, 0), 1.0f);
  EXPECT_EQ(latent.at(0, 1), -1.0f);
  EXPECT_EQ(latent.at(0, 2), 0.3f);
  EXPECT_THROW(clip_latent(latent, 0.0f), std::invalid_argument);
}

}  // namespace
}  // namespace lehdc::nn
