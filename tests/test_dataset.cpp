#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace lehdc::data {
namespace {

Dataset tiny() {
  Dataset dataset(2, 3);
  dataset.add_sample(std::vector<float>{0.0f, 1.0f}, 0);
  dataset.add_sample(std::vector<float>{2.0f, 3.0f}, 1);
  dataset.add_sample(std::vector<float>{4.0f, 5.0f}, 2);
  dataset.add_sample(std::vector<float>{6.0f, 7.0f}, 1);
  return dataset;
}

TEST(Dataset, ShapeAndAccess) {
  const Dataset dataset = tiny();
  EXPECT_EQ(dataset.size(), 4u);
  EXPECT_EQ(dataset.feature_count(), 2u);
  EXPECT_EQ(dataset.class_count(), 3u);
  EXPECT_FALSE(dataset.empty());
  EXPECT_EQ(dataset.sample(1)[0], 2.0f);
  EXPECT_EQ(dataset.label(3), 1);
}

TEST(Dataset, RejectsDegenerateSchema) {
  EXPECT_THROW(Dataset(0, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(2, 0), std::invalid_argument);
}

TEST(Dataset, ValidatesSamples) {
  Dataset dataset(2, 2);
  EXPECT_THROW(dataset.add_sample(std::vector<float>{1.0f}, 0),
               std::invalid_argument);
  EXPECT_THROW(dataset.add_sample(std::vector<float>{1.0f, 2.0f}, 2),
               std::invalid_argument);
  EXPECT_THROW(dataset.add_sample(std::vector<float>{1.0f, 2.0f}, -1),
               std::invalid_argument);
}

TEST(Dataset, BoundsCheckedAccess) {
  const Dataset dataset = tiny();
  EXPECT_THROW((void)dataset.sample(4), std::invalid_argument);
  EXPECT_THROW((void)dataset.label(4), std::invalid_argument);
}

TEST(Dataset, ShufflePreservesSampleLabelPairs) {
  Dataset dataset = tiny();
  // Record the original (feature, label) multiset.
  std::map<float, int> pairing;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    pairing[dataset.sample(i)[0]] = dataset.label(i);
  }
  util::Rng rng(1);
  dataset.shuffle(rng);
  EXPECT_EQ(dataset.size(), 4u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    ASSERT_EQ(pairing.at(dataset.sample(i)[0]), dataset.label(i));
  }
}

TEST(Dataset, ShuffleActuallyPermutes) {
  Dataset dataset(1, 2);
  for (int i = 0; i < 100; ++i) {
    dataset.add_sample(std::vector<float>{static_cast<float>(i)}, i % 2);
  }
  util::Rng rng(2);
  dataset.shuffle(rng);
  bool moved = false;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.sample(i)[0] != static_cast<float>(i)) {
      moved = true;
      break;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(Dataset, SplitPartitionsInOrder) {
  const Dataset dataset = tiny();
  const auto [head, tail] = dataset.split(3);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(tail.size(), 1u);
  EXPECT_EQ(head.label(0), 0);
  EXPECT_EQ(tail.sample(0)[0], 6.0f);
  EXPECT_THROW((void)dataset.split(5), std::invalid_argument);
}

TEST(Dataset, ValueRange) {
  const Dataset dataset = tiny();
  const auto [lo, hi] = dataset.value_range();
  EXPECT_EQ(lo, 0.0f);
  EXPECT_EQ(hi, 7.0f);
  const Dataset empty(2, 2);
  const auto [elo, ehi] = empty.value_range();
  EXPECT_EQ(elo, 0.0f);
  EXPECT_EQ(ehi, 1.0f);
}

TEST(Dataset, GlobalMinMaxNormalize) {
  Dataset dataset = tiny();
  dataset.minmax_normalize(false);
  const auto [lo, hi] = dataset.value_range();
  EXPECT_EQ(lo, 0.0f);
  EXPECT_EQ(hi, 1.0f);
  EXPECT_NEAR(dataset.sample(1)[0], 2.0f / 7.0f, 1e-6f);
}

TEST(Dataset, PerFeatureNormalize) {
  Dataset dataset(2, 2);
  dataset.add_sample(std::vector<float>{0.0f, 100.0f}, 0);
  dataset.add_sample(std::vector<float>{10.0f, 300.0f}, 1);
  dataset.minmax_normalize(true);
  EXPECT_EQ(dataset.sample(0)[0], 0.0f);
  EXPECT_EQ(dataset.sample(1)[0], 1.0f);
  EXPECT_EQ(dataset.sample(0)[1], 0.0f);
  EXPECT_EQ(dataset.sample(1)[1], 1.0f);
}

TEST(Dataset, NormalizeConstantColumnsToZero) {
  Dataset dataset(1, 2);
  dataset.add_sample(std::vector<float>{5.0f}, 0);
  dataset.add_sample(std::vector<float>{5.0f}, 1);
  dataset.minmax_normalize(true);
  EXPECT_EQ(dataset.sample(0)[0], 0.0f);
  Dataset flat(1, 2);
  flat.add_sample(std::vector<float>{5.0f}, 0);
  flat.minmax_normalize(false);
  EXPECT_EQ(flat.sample(0)[0], 0.0f);
}

TEST(Dataset, ClassHistogram) {
  const Dataset dataset = tiny();
  const auto histogram = dataset.class_histogram();
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 1u);
}

TEST(Dataset, SummaryMentionsShape) {
  const Dataset dataset = tiny();
  const auto summary = dataset.summary();
  EXPECT_NE(summary.find("n=4"), std::string::npos);
  EXPECT_NE(summary.find("features=2"), std::string::npos);
  EXPECT_NE(summary.find("classes=3"), std::string::npos);
}

}  // namespace
}  // namespace lehdc::data
