// Tests for util: check, stats, stopwatch, log level plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::util {
namespace {

TEST(Check, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(expects(true, "should not throw"));
}

TEST(Check, ExpectsThrowsInvalidArgument) {
  EXPECT_THROW(expects(false, "bad input"), std::invalid_argument);
}

TEST(Check, EnsuresThrowsInvariantError) {
  EXPECT_THROW(ensures(false, "broken"), InvariantError);
}

TEST(Check, InvariantErrorIsALogicError) {
  try {
    ensures(false, "broken invariant");
    FAIL() << "expected a throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
  }
}

TEST(Check, MessageContainsSourceLocation) {
  try {
    expects(false, "locate me");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
    EXPECT_NE(what.find("locate me"), std::string::npos);
  }
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_EQ(stats.stddev(), 0.0);
  EXPECT_EQ(stats.min(), 4.5);
  EXPECT_EQ(stats.max(), 4.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0, -3.0};
  RunningStats stats;
  double sum = 0.0;
  for (const double v : values) {
    stats.add(v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (const double v : values) {
    ss += (v - mean) * (v - mean);
  }
  const double variance = ss / static_cast<double>(values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), variance, 1e-12);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    all.add(v);
    (i < 20 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Summary, FormatsMeanPlusMinusStd) {
  const std::vector<double> values{80.0, 82.0, 84.0};
  const Summary summary = summarize(values);
  EXPECT_EQ(summary.to_string(), "82.00 ±2.00");
  EXPECT_EQ(summary.to_string(1), "82.0 ±2.0");
}

TEST(Summary, SummarizeEmpty) {
  const Summary summary = summarize({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.mean, 0.0);
}

TEST(Stats, MeanOf) {
  const std::vector<double> values{2.0, 4.0, 9.0};
  EXPECT_DOUBLE_EQ(mean_of(values), 5.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{10, 20, 30, 40};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantInputGivesZero) {
  const std::vector<double> xs{5, 5, 5};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, RejectsMismatchedLengths) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1.0;
  }
  EXPECT_GE(watch.elapsed_seconds(), 0.0);
  EXPECT_GE(watch.elapsed_millis(), watch.elapsed_seconds());
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  watch.reset();
  EXPECT_LT(watch.elapsed_seconds(), 1.0);
}

TEST(Log, LevelRoundTrip) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_debug("must be filtered at error level");
  log_error("visible");
  set_log_level(old_level);
}

}  // namespace
}  // namespace lehdc::util
