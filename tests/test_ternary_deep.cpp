// Tests for the ternary (QuantHD-style) model and the two-layer DeepLeHDC
// extension.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/deep_lehdc.hpp"
#include "core/lehdc_trainer.hpp"
#include "hdc/ternary.hpp"
#include "train/baseline.hpp"
#include "train/class_matrix.hpp"
#include "train_test_util.hpp"

namespace lehdc {
namespace {

// ---------------------------------------------------------------- ternary

TEST(TernaryVector, QuantizeAppliesDeadZone) {
  const std::vector<float> values{2.0f, -0.1f, 0.0f, -3.0f, 0.4f};
  const auto t = hdc::TernaryVector::quantize(values, 0.5f);
  EXPECT_EQ(t.get(0), 1);
  EXPECT_EQ(t.get(1), 0);
  EXPECT_EQ(t.get(2), 0);
  EXPECT_EQ(t.get(3), -1);
  EXPECT_EQ(t.get(4), 0);
  EXPECT_EQ(t.active_count(), 2u);
}

TEST(TernaryVector, ZeroThresholdKeepsAllNonzeros) {
  const std::vector<float> values{1.0f, -1.0f, 0.0f};
  const auto t = hdc::TernaryVector::quantize(values, 0.0f);
  EXPECT_EQ(t.active_count(), 2u);
  EXPECT_EQ(t.get(2), 0);  // exact zeros stay in the dead zone
}

TEST(TernaryVector, DotMatchesManualComputation) {
  util::Rng rng(1);
  const std::size_t dim = 200;
  std::vector<float> values(dim);
  for (auto& v : values) {
    v = static_cast<float>(rng.next_gaussian());
  }
  const auto t = hdc::TernaryVector::quantize(values, 0.5f);
  const auto query = hv::BitVector::random(dim, rng);
  std::int64_t manual = 0;
  for (std::size_t j = 0; j < dim; ++j) {
    manual += static_cast<std::int64_t>(t.get(j)) * query.get(j);
  }
  EXPECT_EQ(t.dot(query), manual);
}

TEST(TernaryVector, DotHandlesWordBoundaries) {
  util::Rng rng(2);
  for (const std::size_t dim : {63u, 64u, 65u, 130u}) {
    std::vector<float> values(dim);
    for (auto& v : values) {
      v = static_cast<float>(rng.next_gaussian());
    }
    const auto t = hdc::TernaryVector::quantize(values, 0.3f);
    const auto query = hv::BitVector::random(dim, rng);
    std::int64_t manual = 0;
    for (std::size_t j = 0; j < dim; ++j) {
      manual += static_cast<std::int64_t>(t.get(j)) * query.get(j);
    }
    ASSERT_EQ(t.dot(query), manual) << "dim " << dim;
  }
}

TEST(TernaryClassifier, QuantizedBaselineStaysAccurate) {
  // QuantHD's claim: ternary quantization of the trained class vectors
  // preserves accuracy on separable data while zeroing weak components.
  // Noisy samples leave many near-zero accumulator components — the ones
  // the QuantHD dead zone removes without hurting accuracy.
  const auto fixture = test::make_encoded_fixture(4, 512, 20, 10, 150, 3);
  const nn::Matrix c_nb =
      train::to_class_matrix(train::accumulate_classes(fixture.train));
  const auto ternary =
      hdc::TernaryClassifier::from_class_matrix(c_nb, 1.0f);
  EXPECT_EQ(ternary.class_count(), 4u);
  EXPECT_GT(ternary.sparsity(), 0.1);
  EXPECT_GT(ternary.accuracy(fixture.test), 0.9);
}

TEST(TernaryClassifier, SparsityGrowsWithThreshold) {
  const auto fixture = test::make_encoded_fixture(3, 256, 15, 0, 40, 4);
  const nn::Matrix c_nb =
      train::to_class_matrix(train::accumulate_classes(fixture.train));
  const auto tight = hdc::TernaryClassifier::from_class_matrix(c_nb, 0.2f);
  const auto loose = hdc::TernaryClassifier::from_class_matrix(c_nb, 1.5f);
  EXPECT_LT(tight.sparsity(), loose.sparsity());
}

TEST(TernaryClassifier, StorageIsTwoBitsPerComponent) {
  const auto fixture = test::make_encoded_fixture(2, 128, 4, 0, 10, 5);
  const nn::Matrix c_nb =
      train::to_class_matrix(train::accumulate_classes(fixture.train));
  const auto ternary =
      hdc::TernaryClassifier::from_class_matrix(c_nb, 0.5f);
  EXPECT_EQ(ternary.storage_bits(), 2u * 128u * 2u);
}

TEST(TernaryClassifier, ValidatesInput) {
  EXPECT_THROW(hdc::TernaryClassifier{std::vector<hdc::TernaryVector>{}},
               std::invalid_argument);
  const nn::Matrix empty;
  EXPECT_THROW(
      (void)hdc::TernaryClassifier::from_class_matrix(empty, 0.5f),
      std::invalid_argument);
}

// ------------------------------------------------------------- deep model

core::DeepLeHdcConfig deep_config() {
  core::DeepLeHdcConfig cfg;
  cfg.hidden = 64;
  cfg.epochs = 20;
  cfg.batch_size = 16;
  cfg.dropout_rate = 0.1f;
  cfg.weight_decay = 0.001f;
  return cfg;
}

TEST(DeepLeHdc, LearnsSeparableData) {
  const auto fixture = test::make_encoded_fixture(3, 256, 16, 8, 30, 6);
  const core::DeepLeHdcTrainer trainer(deep_config());
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_GT(result.model->accuracy(fixture.test), 0.9);
}

TEST(DeepLeHdc, ExportsAllBinaryTwoLayerModel) {
  const auto fixture = test::make_encoded_fixture(3, 256, 8, 0, 20, 7);
  const core::DeepLeHdcTrainer trainer(deep_config());
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  // Not a plain HDC associative memory:
  EXPECT_EQ(result.model->as_binary(), nullptr);
  // Storage: H x D + K x H bits.
  EXPECT_EQ(result.model->storage_bits(), 64u * 256u + 3u * 64u);
}

TEST(DeepLeHdc, TrajectoryAndDeterminism) {
  const auto fixture = test::make_encoded_fixture(2, 128, 8, 4, 15, 8);
  auto cfg = deep_config();
  cfg.epochs = 5;
  const core::DeepLeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 9;
  options.test = &fixture.test;
  options.epoch_observer = train::record_trajectory();
  const auto a = trainer.train(fixture.train, options);
  EXPECT_EQ(a.trajectory.size(), 5u);
  const auto b = trainer.train(fixture.train, options);
  EXPECT_EQ(a.model->accuracy(fixture.test),
            b.model->accuracy(fixture.test));
}

TEST(DeepLeHdc, ValidatesConfig) {
  core::DeepLeHdcConfig bad;
  bad.hidden = 1;
  EXPECT_THROW(core::DeepLeHdcTrainer{bad}, std::invalid_argument);
  core::DeepLeHdcConfig bad_lr;
  bad_lr.learning_rate = 0.0f;
  EXPECT_THROW(core::DeepLeHdcTrainer{bad_lr}, std::invalid_argument);
}

TEST(DeepLeHdc, RejectsEmptyDataset) {
  const hdc::EncodedDataset empty(64, 2);
  const core::DeepLeHdcTrainer trainer(deep_config());
  train::TrainOptions options;
  EXPECT_THROW((void)trainer.train(empty, options), std::invalid_argument);
}

TEST(DeepBinaryModel, ValidatesLayers) {
  std::vector<hv::BitVector> hidden(4, hv::BitVector(32));
  std::vector<hv::BitVector> outputs(2, hv::BitVector(5));  // wrong width
  EXPECT_THROW(core::DeepBinaryModel(std::move(hidden),
                                     std::vector<std::int32_t>(4, 0),
                                     std::move(outputs)),
               std::invalid_argument);
  std::vector<hv::BitVector> hidden2(4, hv::BitVector(32));
  std::vector<hv::BitVector> outputs2(2, hv::BitVector(4));
  EXPECT_THROW(core::DeepBinaryModel(std::move(hidden2),
                                     std::vector<std::int32_t>(3, 0),
                                     std::move(outputs2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lehdc
