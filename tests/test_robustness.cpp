#include "robustness/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "robustness/ber_sweep.hpp"
#include "util/thread_pool.hpp"
#include "train/baseline.hpp"
#include "train_test_util.hpp"

namespace lehdc::robustness {
namespace {

// ---------------------------------------------------- inject_bit_errors

TEST(FaultInjection, ZeroBerFlipsNothing) {
  util::Rng rng(1);
  hv::BitVector hv = hv::BitVector::random(1000, rng);
  const hv::BitVector before = hv;
  EXPECT_EQ(inject_bit_errors(hv, 0.0, rng), 0u);
  EXPECT_EQ(hv, before);
}

TEST(FaultInjection, BerOneFlipsEveryBit) {
  util::Rng rng(2);
  hv::BitVector hv = hv::BitVector::random(300, rng);
  const hv::BitVector before = hv;
  EXPECT_EQ(inject_bit_errors(hv, 1.0, rng), 300u);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(hv.get(i), -before.get(i));
  }
}

TEST(FaultInjection, BerAboveOneIsClamped) {
  util::Rng rng(3);
  hv::BitVector hv = hv::BitVector::random(64, rng);
  EXPECT_EQ(inject_bit_errors(hv, 7.5, rng), 64u);
}

TEST(FaultInjection, FlipCountTracksBer) {
  // With D=20000 and BER=0.1 the expected flip count is 2000 with stddev
  // ~42; a ±5 sigma band keeps this deterministic-in-practice.
  util::Rng rng(4);
  hv::BitVector hv(20000);
  const std::size_t flips = inject_bit_errors(hv, 0.1, rng);
  EXPECT_GT(flips, 1780u);
  EXPECT_LT(flips, 2220u);
}

TEST(FaultInjection, DeterministicGivenRngState) {
  util::Rng seed_rng(5);
  const hv::BitVector original = hv::BitVector::random(2048, seed_rng);
  hv::BitVector a = original;
  hv::BitVector b = original;
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  inject_bit_errors(a, 0.01, rng_a);
  inject_bit_errors(b, 0.01, rng_b);
  EXPECT_EQ(a, b);
}

TEST(FaultInjection, NegativeBerRejected) {
  util::Rng rng(6);
  hv::BitVector hv(64);
  EXPECT_THROW((void)inject_bit_errors(hv, -0.1, rng),
               std::invalid_argument);
}

// ------------------------------------------- corrupt_classifier/queries

hdc::BinaryClassifier make_classifier(std::size_t classes, std::size_t dim,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hv::BitVector> hvs;
  for (std::size_t k = 0; k < classes; ++k) {
    hvs.push_back(hv::BitVector::random(dim, rng));
  }
  return hdc::BinaryClassifier(std::move(hvs));
}

TEST(FaultInjection, CorruptClassifierLeavesOriginalUntouched) {
  const hdc::BinaryClassifier original = make_classifier(4, 512, 7);
  const hdc::BinaryClassifier reference = make_classifier(4, 512, 7);
  util::Rng rng(8);
  const hdc::BinaryClassifier faulty = corrupt_classifier(original, 0.05,
                                                          rng);
  ASSERT_EQ(faulty.class_count(), original.class_count());
  ASSERT_EQ(faulty.dim(), original.dim());
  bool any_changed = false;
  for (std::size_t k = 0; k < original.class_count(); ++k) {
    EXPECT_EQ(original.class_hypervector(k),
              reference.class_hypervector(k));
    any_changed |=
        !(faulty.class_hypervector(k) == original.class_hypervector(k));
  }
  EXPECT_TRUE(any_changed);
}

TEST(FaultInjection, CorruptClassifierIsThreadCountInvariant) {
  // Same seed + BER must give bit-identical corruption regardless of how
  // many workers execute it: per-class seeds are drawn sequentially from
  // the caller's rng and each class corrupts under its own derived stream,
  // so the chaos harness (and any BER sweep) reproduces exactly on any
  // machine shape.
  const hdc::BinaryClassifier original = make_classifier(6, 2048, 11);
  util::ThreadPool solo(1);
  util::ThreadPool wide(8);
  util::Rng rng_a(12);
  util::Rng rng_b(12);
  const hdc::BinaryClassifier with_solo =
      corrupt_classifier(original, 0.03, rng_a, solo);
  const hdc::BinaryClassifier with_wide =
      corrupt_classifier(original, 0.03, rng_b, wide);
  ASSERT_EQ(with_solo.class_count(), with_wide.class_count());
  for (std::size_t k = 0; k < with_solo.class_count(); ++k) {
    EXPECT_EQ(with_solo.class_hypervector(k),
              with_wide.class_hypervector(k))
        << "class " << k;
  }
  // The caller-visible rng must also advance identically.
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

TEST(FaultInjection, CorruptQueriesPreservesLabelsAndShape) {
  const auto fixture = test::make_encoded_fixture(3, 256, 4, 6, 20, 9);
  util::Rng rng(10);
  const hdc::EncodedDataset noisy = corrupt_queries(fixture.test, 0.02,
                                                    rng);
  ASSERT_EQ(noisy.size(), fixture.test.size());
  ASSERT_EQ(noisy.dim(), fixture.test.dim());
  ASSERT_EQ(noisy.class_count(), fixture.test.class_count());
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_EQ(noisy.label(i), fixture.test.label(i));
  }
}

// -------------------------------------------------------------- ber_sweep

struct SweepFixture {
  hdc::BinaryClassifier classifier;
  hdc::EncodedDataset test;
};

SweepFixture make_sweep_fixture() {
  // Cleanly separable data (40 of 1024 bits of noise): the baseline model
  // starts near 100% accuracy, leaving the full degradation range visible.
  const auto fixture = test::make_encoded_fixture(4, 1024, 20, 15, 40, 11);
  train::TrainOptions options;
  options.seed = 12;
  const auto result =
      train::BaselineTrainer().train(fixture.train, options);
  return SweepFixture{*result.model->as_binary(), fixture.test};
}

TEST(BerSweep, DegradesGracefullyAcrossTheEnvelope) {
  const SweepFixture fixture = make_sweep_fixture();
  BerSweepConfig config;  // default envelope {0, 1e-4, 1e-3, 1e-2, 5e-2}
  config.trials = 4;
  config.seed = 2;
  const std::vector<BerPoint> points =
      ber_sweep(fixture.classifier, fixture.test, config);
  ASSERT_EQ(points.size(), 5u);

  const double clean = points.front().mean_accuracy;
  EXPECT_EQ(clean, fixture.classifier.accuracy(fixture.test));
  EXPECT_GT(clean, 0.9);
  for (const BerPoint& point : points) {
    // Graceful: no point collapses below chance and none beats clean by
    // more than trial noise (monotone-ish degradation).
    EXPECT_GT(point.mean_accuracy, 1.0 / 4.0 - 0.1)
        << "collapse at BER " << point.ber;
    EXPECT_LT(point.mean_accuracy, clean + 0.05)
        << "implausible gain at BER " << point.ber;
    EXPECT_LE(point.min_accuracy, point.mean_accuracy);
    EXPECT_LE(point.mean_accuracy, point.max_accuracy);
  }
  // The envelope's extremes must order correctly: heavy corruption cannot
  // beat the clean model.
  EXPECT_LE(points.back().mean_accuracy, clean + 1e-9);
}

TEST(BerSweep, TotalCorruptionFallsToChance) {
  const SweepFixture fixture = make_sweep_fixture();
  BerSweepConfig config;
  config.bers = {0.0, 0.5};
  config.trials = 6;
  config.seed = 3;
  const auto points = ber_sweep(fixture.classifier, fixture.test, config);
  // BER 0.5 randomizes every stored bit: accuracy must sit near 1/classes.
  EXPECT_LT(points.back().mean_accuracy, 0.55);
  EXPECT_LT(points.back().mean_accuracy,
            points.front().mean_accuracy - 0.2);
}

TEST(BerSweep, ReproducibleForSameSeed) {
  const SweepFixture fixture = make_sweep_fixture();
  BerSweepConfig config;
  config.bers = {1e-2};
  config.trials = 3;
  config.seed = 17;
  const auto a = ber_sweep(fixture.classifier, fixture.test, config);
  const auto b = ber_sweep(fixture.classifier, fixture.test, config);
  EXPECT_EQ(a.front().mean_accuracy, b.front().mean_accuracy);
  EXPECT_EQ(a.front().stddev, b.front().stddev);
}

TEST(BerSweep, QueryCorruptionModeRuns) {
  const SweepFixture fixture = make_sweep_fixture();
  BerSweepConfig config;
  config.bers = {1e-3};
  config.trials = 2;
  config.corrupt_model = false;
  config.corrupt_queries = true;
  const auto points = ber_sweep(fixture.classifier, fixture.test, config);
  EXPECT_GT(points.front().mean_accuracy, 0.5);
}

TEST(BerSweep, RejectsEmptyFaultModel) {
  const SweepFixture fixture = make_sweep_fixture();
  BerSweepConfig config;
  config.corrupt_model = false;
  config.corrupt_queries = false;
  EXPECT_THROW(
      (void)ber_sweep(fixture.classifier, fixture.test, config),
      std::invalid_argument);
}

TEST(BerSweep, CsvHasHeaderAndOneRowPerBer) {
  const SweepFixture fixture = make_sweep_fixture();
  BerSweepConfig config;
  config.bers = {0.0, 1e-2};
  config.trials = 2;
  const auto points = ber_sweep(fixture.classifier, fixture.test, config);
  const std::string path = ::testing::TempDir() + "/sweep.csv";
  write_sweep_csv(path, {SweepSeries{"Baseline", points}});
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "ber,Baseline mean accuracy,Baseline std");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lehdc::robustness
