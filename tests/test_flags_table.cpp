// Tests for the flag parser and the table/CSV writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/flags.hpp"
#include "util/table.hpp"

namespace lehdc::util {
namespace {

FlagParser make_parser() {
  FlagParser flags("prog", "test program");
  flags.add_int("count", 5, "a counter");
  flags.add_double("rate", 0.5, "a rate");
  flags.add_string("name", "default", "a name");
  flags.add_flag("verbose", "a switch");
  return flags;
}

void parse(FlagParser& flags, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParser, DefaultsApply) {
  auto flags = make_parser();
  parse(flags, {});
  EXPECT_EQ(flags.get_int("count"), 5);
  EXPECT_EQ(flags.get_double("rate"), 0.5);
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_FALSE(flags.get_flag("verbose"));
}

TEST(FlagParser, SpaceSeparatedValues) {
  auto flags = make_parser();
  parse(flags, {"--count", "42", "--rate", "1.25", "--name", "xyz"});
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_EQ(flags.get_double("rate"), 1.25);
  EXPECT_EQ(flags.get_string("name"), "xyz");
}

TEST(FlagParser, EqualsSeparatedValues) {
  auto flags = make_parser();
  parse(flags, {"--count=7", "--rate=0.125", "--name=a=b"});
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_EQ(flags.get_double("rate"), 0.125);
  EXPECT_EQ(flags.get_string("name"), "a=b");
}

TEST(FlagParser, BooleanForms) {
  auto flags = make_parser();
  parse(flags, {"--verbose"});
  EXPECT_TRUE(flags.get_flag("verbose"));

  auto flags2 = make_parser();
  parse(flags2, {"--verbose=false"});
  EXPECT_FALSE(flags2.get_flag("verbose"));

  auto flags3 = make_parser();
  parse(flags3, {"--verbose=1"});
  EXPECT_TRUE(flags3.get_flag("verbose"));
}

TEST(FlagParser, NegativeNumbers) {
  auto flags = make_parser();
  parse(flags, {"--count", "-3", "--rate", "-0.5"});
  EXPECT_EQ(flags.get_int("count"), -3);
  EXPECT_EQ(flags.get_double("rate"), -0.5);
}

TEST(FlagParser, UnknownFlagThrows) {
  auto flags = make_parser();
  EXPECT_THROW(parse(flags, {"--bogus", "1"}), std::invalid_argument);
}

TEST(FlagParser, MalformedIntThrows) {
  auto flags = make_parser();
  EXPECT_THROW(parse(flags, {"--count", "abc"}), std::invalid_argument);
  auto flags2 = make_parser();
  EXPECT_THROW(parse(flags2, {"--count", "12x"}), std::invalid_argument);
}

TEST(FlagParser, MalformedDoubleThrows) {
  auto flags = make_parser();
  EXPECT_THROW(parse(flags, {"--rate", "fast"}), std::invalid_argument);
}

TEST(FlagParser, MissingValueThrows) {
  auto flags = make_parser();
  EXPECT_THROW(parse(flags, {"--count"}), std::invalid_argument);
}

TEST(FlagParser, PositionalArgumentThrows) {
  auto flags = make_parser();
  EXPECT_THROW(parse(flags, {"stray"}), std::invalid_argument);
}

TEST(FlagParser, WrongTypeAccessThrows) {
  auto flags = make_parser();
  parse(flags, {});
  EXPECT_THROW((void)flags.get_int("rate"), std::invalid_argument);
  EXPECT_THROW((void)flags.get_string("count"), std::invalid_argument);
}

TEST(FlagParser, UndeclaredAccessThrows) {
  auto flags = make_parser();
  parse(flags, {});
  EXPECT_THROW((void)flags.get_int("nope"), std::invalid_argument);
}

TEST(FlagParser, DuplicateDeclarationThrows) {
  FlagParser flags("prog", "dup");
  flags.add_int("x", 1, "first");
  EXPECT_THROW(flags.add_int("x", 2, "second"), std::invalid_argument);
}

TEST(FlagParser, UsageListsAllFlags) {
  const auto flags = make_parser();
  const std::string usage = flags.usage();
  for (const char* name : {"count", "rate", "name", "verbose", "help"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "long-header"});
  table.add_row({"wide-cell", "x"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("| a         | long-header |"), std::string::npos);
  EXPECT_NE(rendered.find("| wide-cell | x           |"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidthRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CellFormatsPrecision) {
  EXPECT_EQ(TextTable::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::cell(3.14159, 0), "3");
}

TEST(CsvEscape, PassesPlainCells) {
  EXPECT_EQ(csv_escape("plain"), "plain");
}

TEST(CsvEscape, QuotesSpecialCells) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/lehdc_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"h1", "h2"});
    csv.write_row({"1", "two,three"});
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(line1, "h1,h2");
  EXPECT_EQ(line2, "1,\"two,three\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/impossible.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace lehdc::util
