#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace lehdc::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(1);
  Matrix logits(5, 7);
  logits.fill_gaussian(rng, 3.0f);
  softmax_rows(logits);
  for (std::size_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_GT(logits.at(r, c), 0.0f);
      sum += logits.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Matrix logits(1, 3);
  logits.at(0, 0) = 1000.0f;
  logits.at(0, 1) = 999.0f;
  logits.at(0, 2) = -1000.0f;
  softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(logits.at(0, 0)));
  EXPECT_NEAR(logits.at(0, 0), 1.0f / (1.0f + std::exp(-1.0f)), 1e-4f);
  EXPECT_NEAR(logits.at(0, 2), 0.0f, 1e-6f);
}

TEST(Softmax, UniformLogitsGiveUniformProbabilities) {
  Matrix logits(1, 4);
  logits.fill(2.5f);
  softmax_rows(logits);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(logits.at(0, c), 0.25f, 1e-6f);
  }
}

TEST(CrossEntropy, KnownValue) {
  // Two classes, logits (0, 0): p = 0.5 → loss = ln 2.
  Matrix logits(1, 2);
  const std::vector<int> labels{0};
  EXPECT_NEAR(cross_entropy(logits, labels), std::log(2.0), 1e-9);
}

TEST(CrossEntropy, PerfectPredictionApproachesZero) {
  Matrix logits(1, 2);
  logits.at(0, 0) = 30.0f;
  const std::vector<int> labels{0};
  EXPECT_NEAR(cross_entropy(logits, labels), 0.0, 1e-9);
}

TEST(CrossEntropy, AveragesOverBatch) {
  Matrix logits(2, 2);
  logits.at(0, 0) = 30.0f;  // perfect
  const std::vector<int> labels{0, 1};  // second row uniform → ln 2
  EXPECT_NEAR(cross_entropy(logits, labels), std::log(2.0) / 2.0, 1e-6);
}

TEST(CrossEntropy, ValidatesLabels) {
  Matrix logits(2, 3);
  EXPECT_THROW((void)cross_entropy(logits, std::vector<int>{0}),
               std::invalid_argument);
  EXPECT_THROW((void)cross_entropy(logits, std::vector<int>{0, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)cross_entropy(logits, std::vector<int>{0, -1}),
               std::invalid_argument);
}

TEST(SoftmaxXentBackward, ReturnsSameLossAsForward) {
  util::Rng rng(2);
  Matrix logits(8, 5);
  logits.fill_gaussian(rng, 2.0f);
  std::vector<int> labels(8);
  for (auto& label : labels) {
    label = static_cast<int>(rng.next_below(5));
  }
  Matrix grad(8, 5);
  const double fused = softmax_xent_backward(logits, labels, grad);
  EXPECT_NEAR(fused, cross_entropy(logits, labels), 1e-9);
}

TEST(SoftmaxXentBackward, GradientIsSoftmaxMinusOnehotOverBatch) {
  Matrix logits(1, 3);
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(0, 2) = 3.0f;
  Matrix probs = logits;
  softmax_rows(probs);
  Matrix grad(1, 3);
  (void)softmax_xent_backward(logits, std::vector<int>{1}, grad);
  EXPECT_NEAR(grad.at(0, 0), probs.at(0, 0), 1e-6f);
  EXPECT_NEAR(grad.at(0, 1), probs.at(0, 1) - 1.0f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 2), probs.at(0, 2), 1e-6f);
}

TEST(SoftmaxXentBackward, GradientRowsSumToZero) {
  util::Rng rng(3);
  Matrix logits(6, 4);
  logits.fill_gaussian(rng, 1.5f);
  std::vector<int> labels{0, 1, 2, 3, 0, 1};
  Matrix grad(6, 4);
  (void)softmax_xent_backward(logits, labels, grad);
  for (std::size_t r = 0; r < 6; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      sum += grad.at(r, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxXentBackward, MatchesFiniteDifferences) {
  util::Rng rng(4);
  Matrix logits(3, 4);
  logits.fill_gaussian(rng, 1.0f);
  const std::vector<int> labels{1, 3, 0};
  Matrix grad(3, 4);
  (void)softmax_xent_backward(logits, labels, grad);
  const double err = max_gradient_error(
      logits, grad, [&] { return cross_entropy(logits, labels); }, 1e-3f);
  EXPECT_LT(err, 1e-3);
}

TEST(GradCheck, DetectsWrongGradients) {
  util::Rng rng(5);
  Matrix logits(2, 3);
  logits.fill_gaussian(rng, 1.0f);
  const std::vector<int> labels{0, 2};
  Matrix wrong_grad(2, 3);
  wrong_grad.fill(0.7f);
  const double err = max_gradient_error(
      logits, wrong_grad, [&] { return cross_entropy(logits, labels); },
      1e-3f);
  EXPECT_GT(err, 0.1);
}

}  // namespace
}  // namespace lehdc::nn
