// Tests for the observability subsystem: registry correctness under
// concurrency, timer monotonicity, JSON schema round-trips, trace export,
// environment wiring, the injectable log sink, and the parity guarantee
// (instrumentation must never change results).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/schema.hpp"
#include "serve/tenant.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::obs {
namespace {

/// Turns metrics collection on for the scope and restores the previous
/// switch state on exit, so tests never leak the global toggle.
class MetricsOn {
 public:
  MetricsOn() : previous_(enabled()) { set_enabled(true); }
  ~MetricsOn() { set_enabled(previous_); }

 private:
  bool previous_;
};

TEST(MetricsSwitch, DisabledMetricsRecordNothing) {
  Registry registry;
  set_enabled(false);
  Counter& counter = registry.counter("test.disabled_counter");
  Gauge& gauge = registry.gauge("test.disabled_gauge");
  Histogram& histogram = registry.histogram("test.disabled_hist");
  counter.add(5);
  gauge.set(3.5);
  histogram.observe(0.25);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(MetricsSwitch, ScopedTimerIsInertWhenDisabled) {
  Registry registry;
  set_enabled(false);
  Histogram& histogram = registry.histogram("test.inert_timer");
  ScopedTimer timer(histogram);
  EXPECT_FALSE(timer.active());
  EXPECT_EQ(timer.stop(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(Registry, SameNameReturnsSameMetric) {
  const MetricsOn on;
  Registry registry;
  Counter& a = registry.counter("test.shared");
  Counter& b = registry.counter("test.shared");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(Registry, NameKindMismatchThrows) {
  Registry registry;
  (void)registry.counter("test.kind");
  EXPECT_THROW((void)registry.gauge("test.kind"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("test.kind"), std::invalid_argument);
}

TEST(Registry, VisitsInRegistrationOrderAndResets) {
  const MetricsOn on;
  Registry registry;
  registry.counter("test.first").add(1);
  registry.counter("test.second").add(2);
  std::vector<std::string> names;
  registry.visit_counters(
      [&](const Counter& c) { names.push_back(c.name()); });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "test.first");
  EXPECT_EQ(names[1], "test.second");

  registry.reset();
  registry.visit_counters(
      [&](const Counter& c) { EXPECT_EQ(c.value(), 0u); });
}

TEST(Registry, ResetCoversGaugesSoScenarioRunsNeverSeeStaleDepth) {
  // Regression guard for the chaos harness: scenario runs share a
  // registry shape and rely on Registry::reset() zeroing *every* metric
  // kind. A gauge that survives reset (e.g. serve.queue_depth left at the
  // previous run's peak) would leak one scenario's state into the next
  // report and break byte-identical reruns.
  const MetricsOn on;
  Registry registry;
  registry.counter("test.reset_counter").add(7);
  Gauge& depth = registry.gauge("serve.queue_depth");
  Gauge& tenant_depth =
      registry.gauge(serve::tenant_metric_name("serve.tenant.queue_depth",
                                               "acme"));
  const std::vector<double> bounds{1.0, 2.0};
  registry.histogram("test.reset_histogram", bounds).observe(1.5);
  depth.set(42.0);
  tenant_depth.set(9.0);
  ASSERT_EQ(depth.value(), 42.0);

  registry.reset();

  std::size_t gauges_seen = 0;
  registry.visit_gauges([&](const Gauge& g) {
    ++gauges_seen;
    EXPECT_EQ(g.value(), 0.0) << g.name();
  });
  EXPECT_EQ(gauges_seen, 2u);
  registry.visit_counters(
      [&](const Counter& c) { EXPECT_EQ(c.value(), 0u) << c.name(); });
  registry.visit_histograms(
      [&](const Histogram& h) { EXPECT_EQ(h.count(), 0u) << h.name(); });

  // A fresh snapshot after reset must still validate — reset clears
  // values, never the registered shape.
  const Json snapshot = metrics_snapshot(registry);
  EXPECT_EQ(validate_metrics_json(snapshot), "");
}

TEST(Schema, TenantMetricNamesAreKnownToTheSchema) {
  // The per-tenant serving names are dynamic (base + tenant id), so the
  // schema admits them by reserved prefix. Both the documented base names
  // and concrete per-tenant expansions must validate; lookalikes outside
  // the reserved prefix must not.
  for (const char* base : {"serve.tenant.requests", "serve.tenant.responses",
                           "serve.tenant.rejected",
                           "serve.tenant.queue_depth"}) {
    EXPECT_TRUE(is_known_metric(base)) << base;
    EXPECT_TRUE(is_known_metric(serve::tenant_metric_name(base, "acme")))
        << base;
  }
  EXPECT_TRUE(is_known_metric("chaos.submitted"));
  EXPECT_FALSE(is_known_metric("serve.tenants.requests"));
  EXPECT_FALSE(is_known_metric("tenant.requests"));
}

TEST(Registry, ConcurrentCountersAreExact) {
  const MetricsOn on;
  Registry registry;
  Counter& counter = registry.counter("test.concurrent_counter");
  util::ThreadPool pool(8);
  constexpr std::size_t kIncrements = 200000;
  pool.parallel_for(0, kIncrements, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      counter.add();
    }
  });
  EXPECT_EQ(counter.value(), kIncrements);
}

TEST(Registry, ConcurrentHistogramObservationsAreExact) {
  const MetricsOn on;
  Registry registry;
  Histogram& histogram = registry.histogram("test.concurrent_hist");
  util::ThreadPool pool(8);
  constexpr std::size_t kObservations = 50000;
  pool.parallel_for(0, kObservations, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Values span several buckets; exact per-value placement is still
      // deterministic.
      histogram.observe(1e-6 * static_cast<double>(1 + i % 1000));
    }
  });
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kObservations);
  std::uint64_t bucket_total = 0;
  for (const auto& bucket : snap.buckets) {
    bucket_total += bucket.count;
  }
  EXPECT_EQ(bucket_total, kObservations);
  EXPECT_GT(snap.sum, 0.0);
  EXPECT_GE(snap.min, 1e-6);
  EXPECT_LE(snap.max, 1e-3);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
}

TEST(Histogram, QuantilesBracketObservedRange) {
  const MetricsOn on;
  Registry registry;
  Histogram& histogram = registry.histogram("test.quantiles");
  for (int i = 1; i <= 100; ++i) {
    histogram.observe(1e-4 * i);  // 0.1 ms .. 10 ms
  }
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1e-4);
  EXPECT_DOUBLE_EQ(snap.max, 1e-2);
  EXPECT_GE(snap.p50, snap.min);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
}

TEST(Timer, MonotonicClockNeverGoesBackwards) {
  double previous = monotonic_seconds();
  for (int i = 0; i < 1000; ++i) {
    const double now = monotonic_seconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(Timer, StopReturnsElapsedOnceAndRecords) {
  const MetricsOn on;
  Registry registry;
  Histogram& histogram = registry.histogram("test.timer");
  ScopedTimer timer(histogram);
  EXPECT_TRUE(timer.active());
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) {
    sink = sink + 1.0;
  }
  const double elapsed = timer.stop();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_FALSE(timer.active());
  EXPECT_EQ(timer.stop(), 0.0);  // second stop is a no-op
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(Json, ParseDumpRoundTrip) {
  const char* text =
      R"({"a": 1.5, "b": [true, null, "x\"y"], "c": {"nested": -3}})";
  const Json parsed = Json::parse(text);
  const Json reparsed = Json::parse(parsed.dump());
  EXPECT_EQ(parsed, reparsed);
  EXPECT_DOUBLE_EQ(parsed.at("a").as_number(), 1.5);
  EXPECT_EQ(parsed.at("b").as_array().size(), 3u);
  EXPECT_EQ(parsed.at("c").at("nested").as_number(), -3.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1} junk"), std::runtime_error);
}

TEST(Report, SnapshotRoundTripsThroughValidator) {
  const MetricsOn on;
  Registry registry;
  registry.counter("test.events").add(7);
  registry.gauge("test.accuracy").set(0.93);
  Histogram& histogram = registry.histogram("test.latency_seconds");
  histogram.observe(1e-5);
  histogram.observe(2e-3);
  histogram.observe(0.5);

  Json context = Json::object();
  context.set("suite", "test_obs");
  const Json snapshot = metrics_snapshot(registry, std::move(context));
  EXPECT_EQ(validate_metrics_json(snapshot), "");

  // The serialized form parses back to an equal, still-valid document.
  const Json reparsed = Json::parse(snapshot.dump(2));
  EXPECT_EQ(reparsed, snapshot);
  EXPECT_EQ(validate_metrics_json(reparsed), "");
  EXPECT_EQ(reparsed.at("schema").as_string(), metrics_schema_version());
  EXPECT_EQ(reparsed.at("context").at("suite").as_string(), "test_obs");
}

TEST(Report, ValidatorRejectsBrokenDocuments) {
  const MetricsOn on;
  Registry registry;
  registry.counter("test.ok").add(1);
  Json snapshot = metrics_snapshot(registry);

  Json wrong_schema = snapshot;
  wrong_schema.set("schema", "lehdc.metrics.v999");
  EXPECT_NE(validate_metrics_json(wrong_schema), "");

  Json bad_name = snapshot;
  for (auto& [key, value] : bad_name.as_object()) {
    if (key == "counters") {
      value.as_array()[0].set("name", "Bad Name!");
    }
  }
  EXPECT_NE(validate_metrics_json(bad_name), "");

  EXPECT_NE(validate_metrics_json(Json::parse("{}")), "");
  EXPECT_NE(validate_metrics_json(Json::parse("[]")), "");
}

TEST(Report, ServingMetricsValidateAgainstSchema) {
  // A small workload through the inference server must leave the global
  // registry with the serving gauges/histograms announced in
  // serve/server.hpp, and the resulting snapshot must still be a valid
  // lehdc.metrics.v1 document (CI gates serve_metrics.json on this).
  const MetricsOn on;
  data::SyntheticConfig cfg;
  cfg.feature_count = 8;
  cfg.class_count = 2;
  cfg.train_count = 60;
  cfg.test_count = 16;
  cfg.seed = 13;
  const data::TrainTestSplit split = data::generate_synthetic(cfg);
  core::PipelineConfig pipeline_cfg;
  pipeline_cfg.dim = 256;
  pipeline_cfg.strategy = core::Strategy::kBaseline;
  core::Pipeline pipeline(pipeline_cfg);
  pipeline.fit(split.train);

  serve::ModelRegistry models;
  models.add("default", std::move(pipeline));
  serve::InferenceServer server(models, serve::ServerConfig{});
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    const auto row = split.test.sample(i);
    ASSERT_TRUE(server.predict({row.begin(), row.end()}).ok());
  }
  (void)server.predict({1.0f});  // one bad-arity rejection for the counter
  server.shutdown();

  const Json snapshot = metrics_snapshot(Registry::global());
  EXPECT_EQ(validate_metrics_json(snapshot), "");

  const auto names_of = [&](const char* section) {
    std::vector<std::string> names;
    for (const Json& metric : snapshot.at(section).as_array()) {
      names.push_back(metric.at("name").as_string());
    }
    return names;
  };
  const auto has = [](const std::vector<std::string>& names,
                      const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  const auto counters = names_of("counters");
  EXPECT_TRUE(has(counters, "serve.requests"));
  EXPECT_TRUE(has(counters, "serve.responses"));
  EXPECT_TRUE(has(counters, "serve.batches"));
  EXPECT_TRUE(has(counters, "serve.rejected_bad_request"));
  EXPECT_TRUE(has(names_of("gauges"), "serve.queue_depth"));
  const auto histograms = names_of("histograms");
  EXPECT_TRUE(has(histograms, "serve.batch_size"));
  EXPECT_TRUE(has(histograms, "serve.e2e_latency_seconds"));
  EXPECT_TRUE(has(histograms, "serve.dispatch_seconds"));

  // The latency histogram must expose the serving-SLO quantiles, ordered.
  for (const Json& metric : snapshot.at("histograms").as_array()) {
    if (metric.at("name").as_string() != "serve.e2e_latency_seconds") {
      continue;
    }
    EXPECT_GT(metric.at("count").as_number(), 0.0);
    EXPECT_LE(metric.at("p50").as_number(), metric.at("p95").as_number());
    EXPECT_LE(metric.at("p95").as_number(), metric.at("p99").as_number());
  }
}

TEST(Trace, SpansExportAsChromeCompleteEvents) {
  const MetricsOn on;
  const bool was_tracing = trace_enabled();
  set_trace_enabled(true);
  {
    const TraceSpan outer("test.outer");
    const TraceSpan inner("test.inner", "testing");
  }
  set_trace_enabled(was_tracing);
  // Spans above went to the global buffer; exercise the export path on it.
  const Json doc = trace_snapshot();
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  bool saw_outer = false;
  for (const Json& event : events.as_array()) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    if (event.at("name").as_string() == "test.outer") {
      saw_outer = true;
    }
  }
  EXPECT_TRUE(saw_outer);
}

TEST(Trace, FullBufferCountsDropsInsteadOfBlocking) {
  TraceBuffer buffer;
  buffer.reserve(2);
  for (int i = 0; i < 5; ++i) {
    buffer.append({"test.drop", "testing", 0.0, 1.0, 0});
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
  buffer.reset();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(Env, InitFromEnvHonorsTheContract) {
  const bool was_enabled = enabled();
  ::unsetenv("LEHDC_METRICS");
  set_enabled(false);
  EXPECT_EQ(init_from_env(), "");
  EXPECT_FALSE(enabled());

  ::setenv("LEHDC_METRICS", "0", 1);
  EXPECT_EQ(init_from_env(), "");
  EXPECT_FALSE(enabled());

  ::setenv("LEHDC_METRICS", "1", 1);
  EXPECT_EQ(init_from_env(), "");
  EXPECT_TRUE(enabled());

  set_enabled(false);
  ::setenv("LEHDC_METRICS", "run_metrics.json", 1);
  EXPECT_EQ(init_from_env(), "run_metrics.json");
  EXPECT_TRUE(enabled());

  ::unsetenv("LEHDC_METRICS");
  set_enabled(was_enabled);
}

TEST(LogSink, CapturesAndRestores) {
  std::vector<std::string> captured;
  util::LogSink previous = util::set_log_sink(
      [&](util::LogLevel level, std::string_view message) {
        captured.push_back(std::string(message) + "/" +
                           std::to_string(static_cast<int>(level)));
      });
  util::log_info("hello sink");
  util::log_debug("below threshold");  // default level is info
  util::LogSink mine = util::set_log_sink(std::move(previous));
  util::log_info("back to stderr");  // must not reach `captured`
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "hello sink/1");
  EXPECT_TRUE(static_cast<bool>(mine));
}

TEST(Parity, InstrumentationNeverChangesResults) {
  data::SyntheticConfig cfg;
  cfg.feature_count = 16;
  cfg.class_count = 3;
  cfg.train_count = 90;
  cfg.test_count = 30;
  cfg.seed = 11;
  const data::TrainTestSplit split = data::generate_synthetic(cfg);

  core::PipelineConfig pipeline_cfg;
  pipeline_cfg.dim = 256;
  pipeline_cfg.seed = 5;
  pipeline_cfg.strategy = core::Strategy::kLeHdc;
  pipeline_cfg.lehdc.epochs = 6;
  pipeline_cfg.lehdc.batch_size = 16;

  const auto run = [&] {
    core::Pipeline pipeline(pipeline_cfg);
    const core::FitReport report = pipeline.fit(
        split.train, &split.test, train::record_trajectory());
    return std::make_pair(report, pipeline.predict_batch(split.test));
  };

  set_enabled(false);
  set_trace_enabled(false);
  const auto [plain_report, plain_predictions] = run();

  set_enabled(true);
  set_trace_enabled(true);
  const auto [instrumented_report, instrumented_predictions] = run();
  set_trace_enabled(false);
  set_enabled(false);

  EXPECT_EQ(plain_predictions, instrumented_predictions);
  EXPECT_EQ(plain_report.train_accuracy, instrumented_report.train_accuracy);
  EXPECT_EQ(plain_report.test_accuracy, instrumented_report.test_accuracy);
  ASSERT_EQ(plain_report.trajectory.size(),
            instrumented_report.trajectory.size());
  for (std::size_t i = 0; i < plain_report.trajectory.size(); ++i) {
    const train::EpochPoint& a = plain_report.trajectory[i];
    const train::EpochPoint& b = instrumented_report.trajectory[i];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.train_accuracy, b.train_accuracy);
    EXPECT_EQ(a.test_accuracy, b.test_accuracy);
    EXPECT_EQ(a.train_loss, b.train_loss);
  }
}

}  // namespace
}  // namespace lehdc::obs
