#include "hdc/classifier.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace lehdc::hdc {
namespace {

/// Builds K well-separated random class hypervectors.
std::vector<hv::BitVector> random_classes(std::size_t k, std::size_t dim,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hv::BitVector> out;
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(hv::BitVector::random(dim, rng));
  }
  return out;
}

/// A noisy copy of `base` with `flips` random components flipped.
hv::BitVector noisy(const hv::BitVector& base, std::size_t flips,
                    util::Rng& rng) {
  hv::BitVector out = base;
  out.flip_random(flips, rng);
  return out;
}

TEST(BinaryClassifier, PredictsNearestClass) {
  const auto classes = random_classes(4, 1024, 1);
  const BinaryClassifier classifier(classes);
  util::Rng rng(2);
  for (std::size_t k = 0; k < 4; ++k) {
    const auto query = noisy(classes[k], 100, rng);
    EXPECT_EQ(classifier.predict(query), static_cast<int>(k));
  }
}

TEST(BinaryClassifier, ScoresMatchDotProducts) {
  const auto classes = random_classes(3, 256, 3);
  const BinaryClassifier classifier(classes);
  util::Rng rng(4);
  const auto query = hv::BitVector::random(256, rng);
  const auto scores = classifier.scores(query);
  ASSERT_EQ(scores.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(scores[k], hv::BitVector::dot(query, classes[k]));
  }
}

TEST(BinaryClassifier, ArgminHammingEqualsArgmaxDot) {
  // Eq. 4/6 equivalence on random queries.
  const auto classes = random_classes(5, 512, 5);
  const BinaryClassifier classifier(classes);
  util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const auto query = hv::BitVector::random(512, rng);
    std::size_t argmin = 0;
    for (std::size_t k = 1; k < 5; ++k) {
      if (hv::BitVector::hamming(query, classes[k]) <
          hv::BitVector::hamming(query, classes[argmin])) {
        argmin = k;
      }
    }
    ASSERT_EQ(classifier.predict(query), static_cast<int>(argmin));
  }
}

TEST(BinaryClassifier, TieGoesToLowestClass) {
  std::vector<hv::BitVector> classes;
  classes.push_back(hv::BitVector(8));
  classes.push_back(hv::BitVector(8));  // identical hypervectors
  const BinaryClassifier classifier(classes);
  EXPECT_EQ(classifier.predict(hv::BitVector(8)), 0);
}

TEST(BinaryClassifier, AccuracyOverDataset) {
  const auto classes = random_classes(2, 512, 7);
  const BinaryClassifier classifier(classes);
  util::Rng rng(8);
  EncodedDataset dataset(512, 2);
  dataset.add(noisy(classes[0], 50, rng), 0);
  dataset.add(noisy(classes[1], 50, rng), 1);
  dataset.add(noisy(classes[0], 50, rng), 1);  // deliberately mislabeled
  EXPECT_NEAR(classifier.accuracy(dataset), 2.0 / 3.0, 1e-12);
}

TEST(BinaryClassifier, AccuracyOfEmptyDatasetIsZero) {
  const BinaryClassifier classifier(random_classes(2, 64, 9));
  const EncodedDataset dataset(64, 2);
  EXPECT_EQ(classifier.accuracy(dataset), 0.0);
}

TEST(BinaryClassifier, RejectsEmptyOrRaggedClasses) {
  EXPECT_THROW(BinaryClassifier{std::vector<hv::BitVector>{}},
               std::invalid_argument);
  std::vector<hv::BitVector> ragged;
  ragged.push_back(hv::BitVector(64));
  ragged.push_back(hv::BitVector(65));
  EXPECT_THROW(BinaryClassifier{std::move(ragged)}, std::invalid_argument);
}

TEST(EnsembleClassifier, PredictsClassOfBestModel) {
  util::Rng rng(10);
  std::vector<std::vector<hv::BitVector>> models(2);
  models[0] = random_classes(3, 512, 11);
  models[1] = random_classes(3, 512, 12);
  const EnsembleClassifier classifier(models);
  EXPECT_EQ(classifier.class_count(), 2u);
  EXPECT_EQ(classifier.models_per_class(), 3u);

  const auto query = noisy(models[1][2], 60, rng);
  std::size_t best_model = 99;
  EXPECT_EQ(classifier.predict(query, &best_model), 1);
  EXPECT_EQ(best_model, 2u);
}

TEST(EnsembleClassifier, StorageGrowsWithEnsembleSize) {
  std::vector<std::vector<hv::BitVector>> small(2);
  small[0] = random_classes(1, 128, 13);
  small[1] = random_classes(1, 128, 14);
  std::vector<std::vector<hv::BitVector>> big(2);
  big[0] = random_classes(8, 128, 15);
  big[1] = random_classes(8, 128, 16);
  EXPECT_EQ(EnsembleClassifier(small).storage_bits(), 2u * 128u);
  EXPECT_EQ(EnsembleClassifier(big).storage_bits(), 2u * 8u * 128u);
}

TEST(EnsembleClassifier, RejectsRaggedModelCounts) {
  std::vector<std::vector<hv::BitVector>> ragged(2);
  ragged[0] = random_classes(2, 64, 17);
  ragged[1] = random_classes(3, 64, 18);
  EXPECT_THROW(EnsembleClassifier{std::move(ragged)},
               std::invalid_argument);
}

TEST(NonBinaryClassifier, CosinePredict) {
  util::Rng rng(19);
  std::vector<hv::IntVector> classes;
  const auto proto0 = hv::BitVector::random(512, rng);
  const auto proto1 = hv::BitVector::random(512, rng);
  hv::IntVector c0(512);
  c0.add_scaled(proto0, 3);
  hv::IntVector c1(512);
  c1.add_scaled(proto1, 3);
  classes.push_back(std::move(c0));
  classes.push_back(std::move(c1));
  const NonBinaryClassifier classifier(std::move(classes));
  EXPECT_EQ(classifier.predict(noisy(proto0, 60, rng)), 0);
  EXPECT_EQ(classifier.predict(noisy(proto1, 60, rng)), 1);
}

TEST(NonBinaryClassifier, MagnitudeInvariance) {
  // Cosine inference must not prefer a class merely for having seen more
  // samples (larger accumulator norm).
  util::Rng rng(20);
  const auto proto0 = hv::BitVector::random(256, rng);
  const auto proto1 = hv::BitVector::random(256, rng);
  hv::IntVector heavy(256);
  heavy.add_scaled(proto0, 100);  // class 0 accumulated 100 samples
  hv::IntVector light(256);
  light.add_scaled(proto1, 1);  // class 1 accumulated one
  std::vector<hv::IntVector> classes;
  classes.push_back(std::move(heavy));
  classes.push_back(std::move(light));
  const NonBinaryClassifier classifier(std::move(classes));
  EXPECT_EQ(classifier.predict(noisy(proto1, 30, rng)), 1);
}

}  // namespace
}  // namespace lehdc::hdc
