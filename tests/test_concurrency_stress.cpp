// Concurrency stress suite — the workload scripts/check.sh tsan exists to
// instrument. Each test deliberately hammers one racy surface of the
// concurrent stack under maximal interleaving pressure:
//
//   - obs::Registry record vs snapshot vs reset from disjoint threads
//   - first-use metric registration races on one name
//   - trace-span emission from inside thread-pool workers (incl. nested
//     parallel_for and buffer-overflow accounting)
//   - ThreadPool::parallel_for issued concurrently from many external
//     threads, and nested from inside workers
//   - ModelRegistry hot reload while an InferenceServer has batches in
//     flight, plus submit vs shutdown
//
// Everything is assertion-checked so the suite is also a correctness test
// under the plain build; under -fsanitize=thread any data race, lock-order
// inversion or unsynchronized publish turns the run red. No test sleeps:
// threads rendezvous on atomics, futures and joins only, so the suite is
// deterministic in what it *proves* even though interleavings vary.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "robustness/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/online.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/thread_pool.hpp"

namespace lehdc {
namespace {

/// Restores the global metrics/trace switches on scope exit so stress
/// tests cannot leak an enabled registry into later tests.
class ObsSwitchGuard {
 public:
  ObsSwitchGuard()
      : metrics_(obs::enabled()), trace_(obs::trace_enabled()) {}
  ~ObsSwitchGuard() {
    obs::set_enabled(metrics_);
    obs::set_trace_enabled(trace_);
  }

 private:
  bool metrics_;
  bool trace_;
};

// ------------------------------------------------- obs::Registry stress --

TEST(RegistryStress, RecordVsSnapshotVsReset) {
  const ObsSwitchGuard guard;
  obs::set_enabled(true);
  obs::Registry registry;

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  constexpr int kSnapshots = 100;

  obs::Counter& counter = registry.counter("test.stress.counter");
  obs::Gauge& gauge = registry.gauge("test.stress.gauge");
  obs::Histogram& histogram = registry.histogram("test.stress.hist");

  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> ops_done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.add(1);
        gauge.set(static_cast<double>(w));
        histogram.observe(1e-4 * static_cast<double>(i % 100));
        // Re-resolving by name races the registry map against snapshots.
        registry.counter("test.stress.counter").add(1);
        ops_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Reader thread: snapshots (and occasionally resets) while writers run.
  std::thread reader([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    for (int s = 0; s < kSnapshots; ++s) {
      const obs::Json snapshot = obs::metrics_snapshot(registry);
      EXPECT_EQ(obs::validate_metrics_json(snapshot), "");
      const obs::Histogram::Snapshot hist = histogram.snapshot();
      // Quantiles of a mid-record snapshot still have to be ordered and
      // inside the observed range.
      EXPECT_LE(hist.p50, hist.p95);
      EXPECT_LE(hist.p95, hist.p99);
      if (hist.count > 0) {
        EXPECT_GE(hist.p50, hist.min);
        EXPECT_LE(hist.p99, hist.max);
        // A snapshot straddling a record must never leak the ±infinity
        // min/max sentinels (the fallback in Histogram::snapshot()).
        EXPECT_TRUE(std::isfinite(hist.min));
        EXPECT_TRUE(std::isfinite(hist.max));
        EXPECT_TRUE(std::isfinite(hist.p99));
      }
      if (s == kSnapshots / 2) {
        registry.reset();
      }
    }
  });

  start.store(true, std::memory_order_release);
  for (auto& thread : writers) {
    thread.join();
  }
  reader.join();

  // The mid-run reset() races the writers: depending on scheduling it can
  // land anywhere from before the first write to after the last, so the
  // final counter value is only bounded above (a lower bound of zero is a
  // legitimate outcome when the reset lands last — sanitizer builds skew
  // the interleaving exactly that way). Forward progress is asserted via
  // the writers' own tally instead.
  EXPECT_EQ(ops_done.load(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_LE(counter.value(),
            static_cast<std::uint64_t>(2 * kWriters * kOpsPerWriter));
}

TEST(RegistryStress, FirstUseRegistrationRace) {
  const ObsSwitchGuard guard;
  obs::set_enabled(true);
  obs::Registry registry;

  constexpr int kThreads = 8;
  std::atomic<bool> start{false};
  std::vector<obs::Counter*> resolved(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      // All threads race the first-use creation of one name and also
      // create a private name, interleaving map growth with lookups.
      obs::Counter& shared = registry.counter("test.race.shared");
      shared.add(1);
      resolved[t] = &shared;
      registry.gauge("test.race.private_" + std::to_string(t)).set(t);
      registry.histogram("test.race.hist").observe(1.0);
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(resolved[t], resolved[0]) << "duplicate metric instance";
  }
  EXPECT_EQ(registry.counter("test.race.shared").value(),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(registry.histogram("test.race.hist").count(),
            static_cast<std::uint64_t>(kThreads));
}

// ------------------------------------------------------- tracing stress --

TEST(TraceStress, SpansFromPoolWorkersAndNestedParallelFor) {
  const ObsSwitchGuard guard;
  obs::TraceBuffer& buffer = obs::TraceBuffer::global();
  obs::set_trace_enabled(true);
  buffer.reserve(1u << 12);

  util::ThreadPool pool(4);
  constexpr std::size_t kOuter = 64;
  std::atomic<int> leaves{0};
  pool.parallel_for(0, kOuter, [&](std::size_t lo, std::size_t hi) {
    const obs::TraceSpan outer_span("stress.outer");
    for (std::size_t i = lo; i < hi; ++i) {
      const obs::TraceSpan span("stress.chunk");
      // Nested parallel_for runs inline on this worker but still emits.
      pool.parallel_for(0, 4, [&](std::size_t ilo, std::size_t ihi) {
        const obs::TraceSpan inner_span("stress.inner");
        leaves.fetch_add(static_cast<int>(ihi - ilo),
                         std::memory_order_relaxed);
      });
    }
  });
  obs::set_trace_enabled(false);

  EXPECT_EQ(leaves.load(), static_cast<int>(kOuter * 4));
  // Quiescent read-back (workers are done): every recorded span is intact.
  const std::vector<obs::TraceEvent> events = buffer.events();
  EXPECT_GT(events.size(), 0u);
  for (const obs::TraceEvent& event : events) {
    ASSERT_NE(event.name, nullptr);
    EXPECT_GE(event.dur_us, 0.0);
  }
  // A trace document is not a metrics document; the validator must say so.
  EXPECT_FALSE(obs::validate_metrics_json(obs::trace_snapshot(buffer)).empty());
  buffer.reset();
}

TEST(TraceStress, OverflowCountsDropsInsteadOfCorrupting) {
  const ObsSwitchGuard guard;
  obs::TraceBuffer& buffer = obs::TraceBuffer::global();
  obs::set_trace_enabled(true);
  constexpr std::size_t kCapacity = 64;
  buffer.reserve(kCapacity);

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        const obs::TraceSpan span("stress.flood");
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  obs::set_trace_enabled(false);

  EXPECT_EQ(buffer.size(), kCapacity);
  EXPECT_EQ(buffer.dropped() + kCapacity,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  buffer.reset();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

// ---------------------------------------------------- thread-pool stress --

TEST(ThreadPoolStress, ConcurrentExternalCallersShareOnePool) {
  util::ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kRounds = 50;
  constexpr std::size_t kRange = 512;

  std::atomic<bool> start{false};
  std::atomic<long long> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int round = 0; round < kRounds; ++round) {
        pool.parallel_for(0, kRange, [&](std::size_t lo, std::size_t hi) {
          // Nested call from the worker runs inline; still must cover.
          std::atomic<long long> nested{0};
          pool.parallel_for(lo, hi, [&](std::size_t ilo, std::size_t ihi) {
            nested.fetch_add(static_cast<long long>(ihi - ilo),
                             std::memory_order_relaxed);
          });
          total.fetch_add(nested.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        });
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& thread : callers) {
    thread.join();
  }
  EXPECT_EQ(total.load(),
            static_cast<long long>(kCallers) * kRounds * kRange);
}

TEST(ThreadPoolStress, ExceptionUnderConcurrencyLeavesPoolUsable) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(
        pool.parallel_for(0, 64,
                          [](std::size_t lo, std::size_t) {
                            if (lo % 2 == 0) {
                              throw std::runtime_error("stress failure");
                            }
                          }),
        std::runtime_error);
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 64);
  }
}

// -------------------------------------------------------- serving stress --

core::Pipeline make_stress_pipeline(std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = 10;
  synth.class_count = 3;
  synth.train_count = 90;
  synth.test_count = 0;
  synth.seed = seed;
  const auto split = data::generate_synthetic(synth);
  core::PipelineConfig config;
  config.dim = 256;
  config.strategy = core::Strategy::kBaseline;
  config.seed = seed;
  core::Pipeline pipeline(config);
  pipeline.fit(split.train);
  return pipeline;
}

data::Dataset make_stress_queries(std::size_t count, std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = 10;
  synth.class_count = 3;
  synth.train_count = count;
  synth.test_count = 0;
  synth.seed = seed;
  return data::generate_synthetic(synth).train;
}

TEST(ServerStress, HotReloadDuringInFlightBatches) {
  serve::ModelRegistry registry;
  const auto model_a = registry.add("default", make_stress_pipeline(101));
  const auto model_b =
      std::make_shared<const core::Pipeline>(make_stress_pipeline(202));

  const data::Dataset queries = make_stress_queries(32, 7);
  // Either generation may legally serve any request; precompute both
  // answer sets so every response can be validated exactly.
  const std::vector<int> answers_a = model_a->predict_batch(queries);
  const std::vector<int> answers_b = model_b->predict_batch(queries);

  serve::ServerConfig config;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 200;
  config.batcher.queue_capacity = 1024;
  serve::InferenceServer server(registry, config);

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 200;
  std::atomic<bool> start{false};
  std::atomic<int> served{0};
  std::atomic<int> rejected{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        const std::size_t q = static_cast<std::size_t>(p * 31 + i) %
                              queries.size();
        const auto row = queries.sample(q);
        const serve::Response response =
            server.predict({row.begin(), row.end()});
        if (response.error == serve::Reject::kNone) {
          // The response must be bit-identical to one of the two bound
          // generations' direct batch predictions for this query.
          EXPECT_TRUE(response.label == answers_a[q] ||
                      response.label == answers_b[q])
              << "label " << response.label << " matches neither generation";
          served.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Queue-full shedding is legal under overload; model_not_found /
          // bad_request would mean the reload broke admission validation.
          EXPECT_EQ(response.error, serve::Reject::kQueueFull);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Reloader: flip the bound model while batches are in flight. Each bind
  // publishes a new shared_ptr; in-flight dispatches keep pinning the old
  // generation until they finish.
  std::thread reloader([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    for (int r = 0; r < 200; ++r) {
      registry.bind("default", (r % 2 == 0) ? model_b : model_a);
      EXPECT_NE(registry.get("default"), nullptr);
      EXPECT_EQ(registry.size(), 1u);
    }
  });

  start.store(true, std::memory_order_release);
  for (auto& thread : producers) {
    thread.join();
  }
  reloader.join();
  server.shutdown();

  EXPECT_EQ(served.load() + rejected.load(),
            kProducers * kRequestsPerProducer);
  EXPECT_GT(served.load(), 0);
}

TEST(ServerStress, ChaosInjectionRacesInferenceWithoutLeaks) {
  // The chaos harness's fault model under real threads: while producers
  // hammer two tenants, a chaos thread keeps rebinding freshly corrupted
  // generations of each tenant's model (serving-time bit errors via
  // robustness::corrupt_classifier). Every generation of one tenant is
  // rebuilt from the same seed, so its stored bits — and therefore its
  // predictions — are identical: any served label that deviates from the
  // tenant's precomputed answers is a cross-generation or cross-tenant
  // leak, not noise. TSan mode instruments exactly this interleaving.
  const auto corrupted_generation = [](const core::Pipeline& base,
                                       std::uint64_t fault_seed) {
    const hdc::BinaryClassifier* binary = base.model().as_binary();
    EXPECT_NE(binary, nullptr);
    const auto& encoder =
        dynamic_cast<const hdc::RecordEncoder&>(base.encoder());
    util::Rng rng(fault_seed);
    return std::make_shared<const core::Pipeline>(core::Pipeline::restore(
        base.config(), encoder.config(),
        robustness::corrupt_classifier(*binary, 0.02, rng)));
  };

  serve::ModelRegistry registry;
  const std::vector<std::string> tenants{"acme", "globex"};
  std::vector<std::shared_ptr<const core::Pipeline>> bases;
  std::vector<std::vector<int>> answers;
  const data::Dataset queries = make_stress_queries(32, 7);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    bases.push_back(
        registry.add(tenants[t], make_stress_pipeline(101 + 100 * t)));
    // All rebinds for tenant t reuse fault seed 900+t, so the corrupted
    // generation's predictions are the single source of truth.
    answers.push_back(
        corrupted_generation(*bases[t], 900 + t)->predict_batch(queries));
  }

  serve::ServerConfig config;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 200;
  config.batcher.queue_capacity = 1024;
  config.default_tenant = tenants.front();
  serve::InferenceServer server(registry, config);

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 150;
  std::atomic<bool> start{false};
  std::atomic<bool> stop_chaos{false};
  std::atomic<int> served{0};
  std::atomic<int> leaked{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load(std::memory_order_acquire)) {
      }
      const std::size_t t = static_cast<std::size_t>(p) % tenants.size();
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        const std::size_t q = static_cast<std::size_t>(p * 31 + i) %
                              queries.size();
        const auto row = queries.sample(q);
        const serve::Response response =
            server.predict({row.begin(), row.end()}, 0, tenants[t]);
        if (response.error == serve::Reject::kNone) {
          served.fetch_add(1, std::memory_order_relaxed);
          // Base and corrupted generations share stored bits per tenant;
          // a foreign label means the batch crossed tenants/generations.
          if (response.label != answers[t][q]) {
            leaked.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          EXPECT_EQ(response.error, serve::Reject::kQueueFull);
        }
      }
    });
  }

  // Chaos thread: keep flipping both tenants to freshly built corrupted
  // generations while batches are in flight. bind() publishes a new
  // shared_ptr; in-flight dispatches pin whichever generation they caught.
  std::thread chaos([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    int r = 0;
    while (!stop_chaos.load(std::memory_order_acquire)) {
      const std::size_t t = static_cast<std::size_t>(r++) % tenants.size();
      registry.bind(tenants[t], corrupted_generation(*bases[t], 900 + t));
    }
  });

  // Bind the corrupted generations up front so producers never observe the
  // clean base model (whose labels could differ from the corrupted ones).
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    registry.bind(tenants[t], corrupted_generation(*bases[t], 900 + t));
  }
  start.store(true, std::memory_order_release);
  for (auto& thread : producers) {
    thread.join();
  }
  stop_chaos.store(true, std::memory_order_release);
  chaos.join();
  server.shutdown();

  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(leaked.load(), 0);
  EXPECT_EQ(registry.size(), tenants.size());
}

TEST(ServerStress, OnlineLearningRacesInferenceAndBlueGreenFlips) {
  // The full online path under real threads: producers hammer inference
  // and return ground-truth feedback for every served response, the
  // sidecar's own worker consumes the queue and performs blue-green
  // flips through the registry while batches are in flight. TSan
  // instruments the three-way race (dispatch record / feedback offer /
  // learner+flip on the worker); the shared_ptr bind contract keeps
  // in-flight batches on their pinned generation across every flip.
  serve::ModelRegistry registry;
  registry.add("acme", make_stress_pipeline(401));
  const data::Dataset queries = make_stress_queries(32, 13);

  serve::ServerConfig config;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 200;
  config.batcher.queue_capacity = 1024;
  config.default_tenant = "acme";
  serve::InferenceServer server(registry, config);

  serve::OnlineSidecarConfig online_config;
  online_config.mode = core::OnlineMode::kCentroid;  // every feedback updates
  online_config.flip_every_updates = 8;
  online_config.holdout_every = 4;
  online_config.min_holdout = 2;
  online_config.correlation_capacity = 8192;
  online_config.queue_capacity = 4096;
  online_config.seed = 5;
  serve::OnlineSidecar sidecar(registry, online_config);  // worker thread
  sidecar.enable("acme");
  server.attach_online(&sidecar);

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 150;
  std::atomic<bool> start{false};
  std::atomic<int> accepted{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        const std::size_t q = static_cast<std::size_t>(p * 31 + i) %
                              queries.size();
        const auto row = queries.sample(q);
        const std::uint64_t id =
            static_cast<std::uint64_t>(p) * 100000 + static_cast<std::uint64_t>(i);
        std::future<serve::Response> future =
            server.submit({row.begin(), row.end()}, 0, "acme", id);
        const serve::Response response = future.get();
        if (response.error != serve::Reject::kNone) {
          EXPECT_EQ(response.error, serve::Reject::kQueueFull);
          continue;
        }
        EXPECT_GE(response.label, 0);
        EXPECT_LT(response.label, 3);
        // The response resolved after dispatch recorded the correlation,
        // so feedback for it can only be accepted or queue-shed — an
        // unknown correlation here would mean record() raced set_value.
        const serve::Reject verdict =
            sidecar.offer_feedback("acme", id, queries.label(q));
        EXPECT_TRUE(verdict == serve::Reject::kNone ||
                    verdict == serve::Reject::kQueueFull)
            << serve::reject_name(verdict);
        if (verdict == serve::Reject::kNone) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& thread : producers) {
    thread.join();
  }

  EXPECT_GT(accepted.load(), 0);
  // Drive the worker to an actual flip: keep offering labelled feedback
  // (fresh correlations, true labels) and let the worker drain. The
  // centroid shadow converges on the separable synthetic stream, so the
  // shadow-vs-live holdout gate passes and the count trigger (every 8
  // updates) fires. Rendezvous is yield-only — no sleeps.
  std::size_t extra = 0;
  for (int round = 0; round < 200 && sidecar.flips("acme") == 0; ++round) {
    for (std::size_t j = 0; j < 32; ++j) {
      const std::size_t q = (extra + j) % queries.size();
      const auto row = queries.sample(q);
      const std::uint64_t id = 1'000'000 + extra + j;
      sidecar.record("acme", id, {row.begin(), row.end()});
      (void)sidecar.offer_feedback("acme", id, queries.label(q));
    }
    extra += 32;
    while (sidecar.queue_depth() > 0) {
      std::this_thread::yield();
    }
  }
  EXPECT_GT(sidecar.flips("acme"), 0u) << "no blue-green flip ever fired";
  EXPECT_GT(sidecar.updates("acme"), 0u);

  // The registry still serves post-flip, and the flipped generation is a
  // working model (labels in range on every query).
  const auto flipped = registry.get("acme");
  ASSERT_NE(flipped, nullptr);
  const std::vector<int> labels = flipped->predict_batch(queries);
  for (const int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
  server.shutdown();
}

TEST(ServerStress, SubmitVersusShutdownAlwaysResolvesFutures) {
  serve::ModelRegistry registry;
  registry.add("default", make_stress_pipeline(303));
  const data::Dataset queries = make_stress_queries(8, 9);

  serve::ServerConfig config;
  config.batcher.max_batch = 4;
  config.batcher.max_wait_us = 100;
  config.batcher.queue_capacity = 256;

  for (int round = 0; round < 10; ++round) {
    serve::InferenceServer server(registry, config);
    constexpr int kProducers = 3;
    constexpr int kRequests = 40;
    std::atomic<bool> start{false};
    std::atomic<int> resolved{0};

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!start.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < kRequests; ++i) {
          const auto row =
              queries.sample(static_cast<std::size_t>(i) % queries.size());
          std::future<serve::Response> future =
              server.submit({row.begin(), row.end()});
          const serve::Response response = future.get();
          // Every future resolves: served, shed, or shutting down —
          // never abandoned, never a broken promise.
          EXPECT_TRUE(response.error == serve::Reject::kNone ||
                      response.error == serve::Reject::kQueueFull ||
                      response.error == serve::Reject::kShuttingDown);
          resolved.fetch_add(1, std::memory_order_relaxed);
          if (p == 0 && i == kRequests / 2) {
            server.shutdown();  // race shutdown against active producers
          }
        }
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& thread : producers) {
      thread.join();
    }
    EXPECT_EQ(resolved.load(), kProducers * kRequests);
  }
}

}  // namespace
}  // namespace lehdc
