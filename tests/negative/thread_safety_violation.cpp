// Negative-compile probe for the thread-safety gate. This TU accesses a
// LEHDC_GUARDED_BY field without its mutex and calls a LEHDC_REQUIRES
// function lock-free; under `clang -Wthread-safety -Werror=thread-safety`
// it MUST fail to compile. The ctest `thread_safety_negative_compile`
// (clang-gated, WILL_FAIL) syntax-checks it at test time, proving the
// gate is live rather than silently pacified. It is never linked into
// any target, and under gcc (annotations are no-ops) it is not built.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(std::int64_t amount) {
    balance_ += amount;  // BUG: guarded write without holding mutex_
  }

  void audited_set(std::int64_t amount) LEHDC_REQUIRES(mutex_) {
    balance_ = amount;
  }

  void set_without_lock(std::int64_t amount) {
    audited_set(amount);  // BUG: REQUIRES(mutex_) callee, lock not held
  }

 private:
  lehdc::util::Mutex mutex_;
  std::int64_t balance_ LEHDC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  account.set_without_lock(2);
  return 0;
}
