#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lehdc::nn {
namespace {

/// Gradient of f(w) = 0.5 * (w - target)^2.
Matrix quadratic_grad(const Matrix& w, float target) {
  Matrix g(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.size(); ++i) {
    g.data()[i] = w.data()[i] - target;
  }
  return g;
}

TEST(Adam, FirstStepHasLearningRateMagnitude) {
  AdamConfig cfg;
  cfg.learning_rate = 0.1f;
  AdamOptimizer adam(1, 1, cfg);
  Matrix w(1, 1);
  w.at(0, 0) = 5.0f;
  Matrix g(1, 1);
  g.at(0, 0) = 123.0f;  // magnitude is normalized away by Adam
  adam.step(w, g);
  // After bias correction the first step is ~lr in the gradient direction.
  EXPECT_NEAR(w.at(0, 0), 5.0f - 0.1f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  AdamConfig cfg;
  cfg.learning_rate = 0.05f;
  AdamOptimizer adam(2, 3, cfg);
  Matrix w(2, 3);
  w.fill(4.0f);
  for (int step = 0; step < 600; ++step) {
    const Matrix g = quadratic_grad(w, 1.5f);
    adam.step(w, g);
  }
  for (const float v : w.data()) {
    EXPECT_NEAR(v, 1.5f, 0.05f);
  }
}

TEST(Adam, StepCountAdvances) {
  AdamOptimizer adam(1, 1, AdamConfig{});
  EXPECT_EQ(adam.step_count(), 0u);
  Matrix w(1, 1);
  Matrix g(1, 1);
  adam.step(w, g);
  adam.step(w, g);
  EXPECT_EQ(adam.step_count(), 2u);
}

TEST(Adam, L2DecayPullsWeightsTowardZero) {
  AdamConfig cfg;
  cfg.learning_rate = 0.05f;
  cfg.weight_decay = 0.5f;
  cfg.decay_mode = WeightDecayMode::kL2;
  AdamOptimizer adam(1, 1, cfg);
  Matrix w(1, 1);
  w.at(0, 0) = 2.0f;
  Matrix zero_grad(1, 1);
  for (int step = 0; step < 400; ++step) {
    adam.step(w, zero_grad);
  }
  EXPECT_NEAR(w.at(0, 0), 0.0f, 0.1f);
}

TEST(Adam, DecoupledDecayShrinksMultiplicatively) {
  AdamConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.weight_decay = 0.1f;
  cfg.decay_mode = WeightDecayMode::kDecoupled;
  AdamOptimizer adam(1, 1, cfg);
  Matrix w(1, 1);
  w.at(0, 0) = 1.0f;
  Matrix zero_grad(1, 1);
  adam.step(w, zero_grad);
  // Zero gradient → zero Adam step; only the decoupled decay applies.
  EXPECT_NEAR(w.at(0, 0), 1.0f * (1.0f - 0.1f * 0.1f), 1e-5f);
}

TEST(Adam, NoDecayLeavesZeroGradStationary) {
  AdamConfig cfg;
  cfg.decay_mode = WeightDecayMode::kNone;
  cfg.weight_decay = 0.5f;  // must be ignored
  AdamOptimizer adam(1, 1, cfg);
  Matrix w(1, 1);
  w.at(0, 0) = 3.0f;
  Matrix zero_grad(1, 1);
  adam.step(w, zero_grad);
  EXPECT_EQ(w.at(0, 0), 3.0f);
}

TEST(Adam, LearningRateIsAdjustable) {
  AdamOptimizer adam(1, 1, AdamConfig{});
  adam.set_learning_rate(0.5f);
  EXPECT_EQ(adam.learning_rate(), 0.5f);
}

TEST(Adam, ValidatesConfigAndShapes) {
  AdamConfig bad;
  bad.learning_rate = 0.0f;
  EXPECT_THROW(AdamOptimizer(1, 1, bad), std::invalid_argument);
  AdamConfig bad_beta;
  bad_beta.beta1 = 1.0f;
  EXPECT_THROW(AdamOptimizer(1, 1, bad_beta), std::invalid_argument);

  AdamOptimizer adam(2, 2, AdamConfig{});
  Matrix wrong(3, 2);
  Matrix grad(3, 2);
  EXPECT_THROW(adam.step(wrong, grad), std::invalid_argument);
}

TEST(Sgd, PlainStepIsLrTimesGrad) {
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  SgdOptimizer sgd(1, 1, cfg);
  Matrix w(1, 1);
  w.at(0, 0) = 1.0f;
  Matrix g(1, 1);
  g.at(0, 0) = 2.0f;
  sgd.step(w, g);
  EXPECT_NEAR(w.at(0, 0), 1.0f - 0.2f, 1e-6f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.momentum = 0.9f;
  SgdOptimizer sgd(1, 1, cfg);
  Matrix w(1, 1);
  Matrix g(1, 1);
  g.at(0, 0) = 1.0f;
  sgd.step(w, g);
  const float after_one = w.at(0, 0);
  sgd.step(w, g);
  const float second_step = w.at(0, 0) - after_one;
  // Second step = -lr * (0.9 * 1 + 1) = -0.19.
  EXPECT_NEAR(second_step, -0.19f, 1e-6f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.momentum = 0.5f;
  SgdOptimizer sgd(1, 4, cfg);
  Matrix w(1, 4);
  w.fill(-3.0f);
  for (int step = 0; step < 300; ++step) {
    const Matrix g = quadratic_grad(w, 2.0f);
    sgd.step(w, g);
  }
  for (const float v : w.data()) {
    EXPECT_NEAR(v, 2.0f, 0.01f);
  }
}

TEST(Sgd, ValidatesConfig) {
  SgdConfig bad;
  bad.momentum = 1.0f;
  EXPECT_THROW(SgdOptimizer(1, 1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace lehdc::nn
