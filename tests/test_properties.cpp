// Property-based suites: invariants that must hold across randomized
// inputs and swept parameters, beyond the example-based unit tests.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "core/pipeline.hpp"
#include "hdc/model_io.hpp"
#include "train/baseline.hpp"
#include "core/lehdc_trainer.hpp"
#include "data/synthetic.hpp"
#include "hv/bitslice.hpp"
#include "hv/bitvector.hpp"
#include "hv/similarity.hpp"
#include "train_test_util.hpp"

namespace lehdc {
namespace {

// ------------------------------------------------ hypervector algebra

class HvAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HvAlgebraProperty, BindingPreservesDistances) {
  // For any a, b, c: Hamm(a ∘ c, b ∘ c) == Hamm(a, b) — binding is an
  // isometry, the property that makes HDC key-value pairs recoverable.
  util::Rng rng(GetParam());
  const std::size_t dim = 200 + rng.next_below(400);
  const auto a = hv::BitVector::random(dim, rng);
  const auto b = hv::BitVector::random(dim, rng);
  const auto c = hv::BitVector::random(dim, rng);
  auto ac = a;
  ac.bind_inplace(c);
  auto bc = b;
  bc.bind_inplace(c);
  EXPECT_EQ(hv::BitVector::hamming(ac, bc), hv::BitVector::hamming(a, b));
}

TEST_P(HvAlgebraProperty, BindingIsCommutativeAndAssociative) {
  util::Rng rng(GetParam() ^ 0xabcdULL);
  const std::size_t dim = 100 + rng.next_below(200);
  const auto a = hv::BitVector::random(dim, rng);
  const auto b = hv::BitVector::random(dim, rng);
  const auto c = hv::BitVector::random(dim, rng);
  auto ab = a;
  ab.bind_inplace(b);
  auto ba = b;
  ba.bind_inplace(a);
  EXPECT_EQ(ab, ba);
  auto ab_c = ab;
  ab_c.bind_inplace(c);
  auto bc = b;
  bc.bind_inplace(c);
  auto a_bc = a;
  a_bc.bind_inplace(bc);
  EXPECT_EQ(ab_c, a_bc);
}

TEST_P(HvAlgebraProperty, TriangleInequalityHolds) {
  util::Rng rng(GetParam() ^ 0x1234ULL);
  const std::size_t dim = 150 + rng.next_below(300);
  const auto a = hv::BitVector::random(dim, rng);
  const auto b = hv::BitVector::random(dim, rng);
  const auto c = hv::BitVector::random(dim, rng);
  EXPECT_LE(hv::BitVector::hamming(a, c),
            hv::BitVector::hamming(a, b) + hv::BitVector::hamming(b, c));
}

TEST_P(HvAlgebraProperty, RotationIsAnIsometry) {
  util::Rng rng(GetParam() ^ 0x5678ULL);
  const std::size_t dim = 100 + rng.next_below(100);
  const std::size_t k = rng.next_below(dim);
  const auto a = hv::BitVector::random(dim, rng);
  const auto b = hv::BitVector::random(dim, rng);
  EXPECT_EQ(hv::BitVector::hamming(a.rotated(k), b.rotated(k)),
            hv::BitVector::hamming(a, b));
}

TEST_P(HvAlgebraProperty, BundleIsWithinEveryInputsBallOnAverage) {
  // The majority bundle must be closer to each input than a random
  // hypervector is (the "prototype" property bundling relies on).
  util::Rng rng(GetParam() ^ 0x9999ULL);
  const std::size_t dim = 512;
  hv::BitSliceAccumulator acc(dim);
  std::vector<hv::BitVector> inputs;
  const std::size_t count = 3 + rng.next_below(8);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.push_back(hv::BitVector::random(dim, rng));
    acc.add(inputs.back());
  }
  const auto bundle = acc.majority(hv::BitVector::random(dim, rng));
  for (const auto& input : inputs) {
    EXPECT_LT(hv::BitVector::hamming(bundle, input), dim / 2 + dim / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrials, HvAlgebraProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ------------------------------------------------ pipeline invariants

struct StrategyCase {
  core::Strategy strategy;
};

class PipelineStrategyProperty
    : public ::testing::TestWithParam<core::Strategy> {};

TEST_P(PipelineStrategyProperty, DeterministicPerSeed) {
  data::SyntheticConfig synth;
  synth.feature_count = 20;
  synth.class_count = 3;
  synth.train_count = 90;
  synth.test_count = 30;
  synth.seed = 11;
  const auto split = generate_synthetic(synth);

  core::PipelineConfig cfg;
  cfg.dim = 256;
  cfg.seed = 21;
  cfg.strategy = GetParam();
  cfg.lehdc.epochs = 5;
  cfg.lehdc.batch_size = 16;
  cfg.retrain.iterations = 5;
  cfg.adapt.iterations = 5;
  cfg.multimodel.models_per_class = 2;
  cfg.multimodel.epochs = 3;
  cfg.nonbinary.retrain_epochs = 3;

  core::Pipeline a(cfg);
  core::Pipeline b(cfg);
  (void)a.fit(split.train);
  (void)b.fit(split.train);
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ASSERT_EQ(a.predict(split.test.sample(i)),
              b.predict(split.test.sample(i)))
        << core::strategy_name(GetParam()) << " sample " << i;
  }
}

TEST_P(PipelineStrategyProperty, BeatsChanceOnLearnableData) {
  data::SyntheticConfig synth;
  synth.feature_count = 24;
  synth.class_count = 4;
  synth.train_count = 160;
  synth.test_count = 60;
  synth.class_separation = 1.0;
  synth.noise_stddev = 0.25;
  synth.prototypes_per_class = 2;
  synth.seed = 13;
  const auto split = generate_synthetic(synth);

  core::PipelineConfig cfg;
  cfg.dim = 512;
  cfg.seed = 3;
  cfg.strategy = GetParam();
  cfg.lehdc.epochs = 8;
  cfg.lehdc.batch_size = 16;
  cfg.retrain.iterations = 8;
  cfg.adapt.iterations = 8;
  cfg.multimodel.models_per_class = 2;
  cfg.multimodel.epochs = 4;
  core::Pipeline pipeline(cfg);
  const auto report = pipeline.fit(split.train, &split.test);
  EXPECT_GT(report.test_accuracy, 0.6)
      << core::strategy_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PipelineStrategyProperty,
    ::testing::Values(core::Strategy::kBaseline, core::Strategy::kMultiModel,
                      core::Strategy::kRetraining,
                      core::Strategy::kEnhancedRetraining,
                      core::Strategy::kAdaptHd, core::Strategy::kNonBinary,
                      core::Strategy::kLeHdc),
    [](const auto& info) {
      // gtest parameter names must be alphanumeric ("Multi-Model" is not).
      std::string name = core::strategy_name(info.param);
      std::erase_if(name, [](char ch) { return !std::isalnum(
                                static_cast<unsigned char>(ch)); });
      return name;
    });

// ------------------------------------------------ encoder monotonicity

class EncoderValueSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(EncoderValueSweep, CodeDistanceTracksValueDistance) {
  // Sweeping one feature across its range must move the code monotonically
  // (up to quantization plateaus) — the correlation property of Sec. 2
  // lifted through the whole encoder.
  const auto [dim, levels] = GetParam();
  hdc::RecordEncoderConfig cfg;
  cfg.dim = dim;
  cfg.feature_count = 8;
  cfg.levels = levels;
  cfg.seed = 31;
  const hdc::RecordEncoder encoder(cfg);

  std::vector<float> base(8, 0.5f);
  base[0] = 0.0f;
  const auto reference = encoder.encode(base);
  std::size_t previous = 0;
  for (const float value : {0.25f, 0.5f, 0.75f, 1.0f}) {
    auto moved = base;
    moved[0] = value;
    const std::size_t distance =
        hv::BitVector::hamming(reference, encoder.encode(moved));
    EXPECT_GE(distance + dim / 50, previous)  // tolerate small plateaus
        << "value " << value;
    previous = distance;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncoderValueSweep,
    ::testing::Combine(::testing::Values(512, 1000, 2048),
                       ::testing::Values(4, 16, 64)));

// ------------------------------------------------ LeHDC config sweep

class LeHdcConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, float>> {};

TEST_P(LeHdcConfigSweep, TrainsAcrossBatchAndDropout) {
  const auto [batch, dropout] = GetParam();
  const auto fixture = test::make_encoded_fixture(3, 256, 12, 6, 30, 17);
  core::LeHdcConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = batch;
  cfg.dropout_rate = dropout;
  const core::LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_GT(result.model->accuracy(fixture.test), 0.8)
      << "batch " << batch << " dropout " << dropout;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LeHdcConfigSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 16, 36),
                       ::testing::Values(0.0f, 0.3f, 0.6f)));

// ------------------------------------------------ serialization fuzz

TEST(SerializationFuzz, CorruptedModelsThrowNeverCrash) {
  const auto fixture = test::make_encoded_fixture(3, 130, 4, 0, 10, 19);
  const auto classes = train::bundle_classes(fixture.train, 1);
  const hdc::BinaryClassifier classifier(classes);
  const std::string path = ::testing::TempDir() + "/fuzz.lhdc";
  hdc::save_classifier(classifier, path);

  // Read the pristine bytes once.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  util::Rng rng(20);
  for (int trial = 0; trial < 50; ++trial) {
    std::string corrupted = bytes;
    // Truncate or flip a random byte.
    if (rng.next_bool(0.5)) {
      corrupted.resize(rng.next_below(corrupted.size()));
    } else {
      const std::size_t at = rng.next_below(corrupted.size());
      corrupted[at] = static_cast<char>(rng.next_below(256));
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    try {
      const auto loaded = hdc::load_classifier(path);
      // A byte flip inside the payload can still parse — that is fine;
      // the loaded model must at least be structurally sound.
      EXPECT_GT(loaded.class_count(), 0u);
    } catch (const std::exception&) {
      // Throwing (runtime_error / invalid_argument / bad_alloc guarded by
      // header checks) is the expected outcome for structural corruption.
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lehdc
