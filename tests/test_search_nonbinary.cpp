// Tests for ranked search/confidence and the full non-binary HDC path.
#include <gtest/gtest.h>

#include <stdexcept>

#include "data/synthetic.hpp"
#include "hdc/nonbinary_encoding.hpp"
#include "hdc/search.hpp"
#include "train/baseline.hpp"
#include "train_test_util.hpp"

namespace lehdc::hdc {
namespace {

BinaryClassifier small_classifier(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hv::BitVector> classes;
  for (int k = 0; k < 4; ++k) {
    classes.push_back(hv::BitVector::random(512, rng));
  }
  return BinaryClassifier(std::move(classes));
}

TEST(RankClasses, FrontMatchesPredict) {
  const auto classifier = small_classifier(1);
  util::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto query = hv::BitVector::random(512, rng);
    const auto ranked = rank_classes(classifier, query);
    ASSERT_EQ(ranked.label(), classifier.predict(query));
  }
}

TEST(RankClasses, RankingIsSortedAndComplete) {
  const auto classifier = small_classifier(3);
  util::Rng rng(4);
  const auto query = hv::BitVector::random(512, rng);
  const auto ranked = rank_classes(classifier, query);
  ASSERT_EQ(ranked.ranking.size(), 4u);
  for (std::size_t i = 0; i + 1 < ranked.ranking.size(); ++i) {
    EXPECT_GE(ranked.ranking[i].dot, ranked.ranking[i + 1].dot);
  }
  // Every label appears exactly once.
  std::vector<bool> seen(4, false);
  for (const auto& scored : ranked.ranking) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(scored.label)]);
    seen[static_cast<std::size_t>(scored.label)] = true;
  }
}

TEST(RankClasses, HammingIdentityHolds) {
  const auto classifier = small_classifier(5);
  util::Rng rng(6);
  const auto query = hv::BitVector::random(512, rng);
  for (const auto& scored : rank_classes(classifier, query).ranking) {
    const auto expected = static_cast<double>(hv::BitVector::hamming(
                              query, classifier.class_hypervector(
                                         static_cast<std::size_t>(
                                             scored.label)))) /
                          512.0;
    EXPECT_NEAR(scored.normalized_hamming, expected, 1e-12);
  }
}

TEST(RankClasses, MarginReflectsSeparation) {
  // A query equal to one class hypervector has a huge margin; a query
  // equidistant from two identical classes has margin zero.
  util::Rng rng(7);
  const auto proto = hv::BitVector::random(256, rng);
  std::vector<hv::BitVector> classes{proto, hv::BitVector::random(256, rng)};
  const BinaryClassifier separated(std::move(classes));
  EXPECT_GT(rank_classes(separated, proto).margin, 0.2);

  std::vector<hv::BitVector> twins{proto, proto};
  const BinaryClassifier tied(std::move(twins));
  EXPECT_EQ(rank_classes(tied, proto).margin, 0.0);
}

TEST(RankClasses, ConfidenceBounds) {
  const auto classifier = small_classifier(8);
  util::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    const auto query = hv::BitVector::random(512, rng);
    const auto ranked = rank_classes(classifier, query);
    EXPECT_GT(ranked.confidence, 1.0 / 4.0 - 1e-9);  // >= uniform
    EXPECT_LE(ranked.confidence, 1.0);
  }
}

TEST(TopK, ClampsAndTruncates) {
  const auto classifier = small_classifier(10);
  util::Rng rng(11);
  const auto query = hv::BitVector::random(512, rng);
  EXPECT_EQ(top_k(classifier, query, 2).size(), 2u);
  EXPECT_EQ(top_k(classifier, query, 99).size(), 4u);
  EXPECT_EQ(top_k(classifier, query, 1).front().label,
            classifier.predict(query));
}

TEST(RankClasses, ValidatesInput) {
  const auto classifier = small_classifier(12);
  EXPECT_THROW((void)rank_classes(classifier, hv::BitVector(100)),
               std::invalid_argument);
}

// ------------------------------------------------------- non-binary path

RecordEncoder nonbinary_encoder() {
  RecordEncoderConfig cfg;
  cfg.dim = 1024;
  cfg.feature_count = 24;
  cfg.seed = 13;
  return RecordEncoder(cfg);
}

TEST(NonBinaryEncoding, AccumulatorBinarizesToTheBinaryCode) {
  // sgn(non-binary code) must equal the binary encoder output up to
  // sgn(0) tie components.
  const auto encoder = nonbinary_encoder();
  util::Rng rng(14);
  std::vector<float> sample(24);
  for (auto& v : sample) {
    v = rng.next_float();
  }
  const hv::IntVector code = encode_record_nonbinary(encoder, sample);
  const hv::BitVector binary = encoder.encode(sample);
  for (std::size_t j = 0; j < code.dim(); ++j) {
    if (code.get(j) != 0) {
      ASSERT_EQ(code.get(j) < 0, binary.get_bit(j)) << "component " << j;
    }
  }
}

TEST(NonBinaryEncoding, AccumulatorBoundedByFeatureCount) {
  const auto encoder = nonbinary_encoder();
  const std::vector<float> sample(24, 0.5f);
  const hv::IntVector code = encode_record_nonbinary(encoder, sample);
  for (std::size_t j = 0; j < code.dim(); ++j) {
    EXPECT_LE(std::abs(code.get(j)), 24);
    // Parity: the sum of 24 terms of ±1 is even.
    EXPECT_EQ((code.get(j) + 24) % 2, 0);
  }
}

TEST(NonBinaryEncodedDataset, ValidatesAdds) {
  NonBinaryEncodedDataset dataset(64, 2);
  EXPECT_THROW(dataset.add(hv::IntVector(32), 0), std::invalid_argument);
  EXPECT_THROW(dataset.add(hv::IntVector(64), 2), std::invalid_argument);
  dataset.add(hv::IntVector(64), 1);
  EXPECT_EQ(dataset.size(), 1u);
}

data::TrainTestSplit nonbinary_split(double separation) {
  data::SyntheticConfig synth;
  synth.feature_count = 24;
  synth.class_count = 3;
  synth.train_count = 150;
  synth.test_count = 60;
  synth.class_separation = separation;
  synth.noise_stddev = 0.3;
  synth.prototypes_per_class = 2;
  synth.seed = 15;
  return generate_synthetic(synth);
}

TEST(FullNonBinary, LearnsSeparableData) {
  const auto split = nonbinary_split(1.2);
  const auto encoder = nonbinary_encoder();
  const auto train_set = encode_dataset_nonbinary(encoder, split.train);
  const auto test_set = encode_dataset_nonbinary(encoder, split.test);
  const auto classifier =
      FullNonBinaryClassifier::fit(train_set, 0, 1.0, 1);
  EXPECT_EQ(classifier.class_count(), 3u);
  EXPECT_GT(classifier.accuracy(test_set), 0.9);
}

TEST(FullNonBinary, RetrainingHelpsOnHardData) {
  const auto split = nonbinary_split(0.25);
  const auto encoder = nonbinary_encoder();
  const auto train_set = encode_dataset_nonbinary(encoder, split.train);
  const auto test_set = encode_dataset_nonbinary(encoder, split.test);
  const auto plain = FullNonBinaryClassifier::fit(train_set, 0, 1.0, 1);
  const auto refined = FullNonBinaryClassifier::fit(train_set, 15, 1.0, 1);
  EXPECT_GE(refined.accuracy(train_set), plain.accuracy(train_set));
  EXPECT_GE(refined.accuracy(test_set) + 0.05, plain.accuracy(test_set));
}

TEST(FullNonBinary, RicherThanBinaryOnTheSameEncoding) {
  // Footnote 1 / Sec. 2: non-binary codes carry more information, so the
  // non-binary path should match or beat the binary baseline trained on
  // the binarized version of the same encoding.
  const auto split = nonbinary_split(0.3);
  const auto encoder = nonbinary_encoder();
  const auto nb_train = encode_dataset_nonbinary(encoder, split.train);
  const auto nb_test = encode_dataset_nonbinary(encoder, split.test);
  const auto bin_train = encode_dataset(encoder, split.train);
  const auto bin_test = encode_dataset(encoder, split.test);

  const auto nonbinary = FullNonBinaryClassifier::fit(nb_train, 0, 1.0, 1);
  const train::BaselineTrainer baseline;
  train::TrainOptions options;
  options.seed = 1;
  const auto binary = baseline.train(bin_train, options);
  EXPECT_GE(nonbinary.accuracy(nb_test) + 0.05,
            binary.model->accuracy(bin_test));
}

TEST(FullNonBinary, ValidatesUsage) {
  const NonBinaryEncodedDataset empty(64, 2);
  EXPECT_THROW((void)FullNonBinaryClassifier::fit(empty, 0, 1.0, 1),
               std::invalid_argument);
  const FullNonBinaryClassifier unfitted;
  EXPECT_THROW((void)unfitted.predict(hv::IntVector(64)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lehdc::hdc
