#include "hdc/item_memory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hv/similarity.hpp"

namespace lehdc::hdc {
namespace {

TEST(PositionMemory, HasRequestedShape) {
  const PositionMemory memory(16, 512, 1);
  EXPECT_EQ(memory.size(), 16u);
  EXPECT_EQ(memory.dim(), 512u);
  EXPECT_EQ(memory.at(0).dim(), 512u);
}

TEST(PositionMemory, IsDeterministicPerSeed) {
  const PositionMemory a(8, 256, 42);
  const PositionMemory b(8, 256, 42);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.at(i), b.at(i));
  }
}

TEST(PositionMemory, DifferentSeedsDiffer) {
  const PositionMemory a(4, 256, 1);
  const PositionMemory b(4, 256, 2);
  EXPECT_NE(a.at(0), b.at(0));
}

TEST(PositionMemory, ItemsAreQuasiOrthogonal) {
  const PositionMemory memory(12, 10000, 3);
  for (std::size_t i = 0; i < memory.size(); ++i) {
    for (std::size_t j = i + 1; j < memory.size(); ++j) {
      EXPECT_NEAR(hv::normalized_hamming(memory.at(i), memory.at(j)), 0.5,
                  0.03);
    }
  }
}

TEST(PositionMemory, BoundsChecked) {
  const PositionMemory memory(4, 64, 1);
  EXPECT_THROW((void)memory.at(4), std::invalid_argument);
}

TEST(PositionMemory, RejectsDegenerateShapes) {
  EXPECT_THROW(PositionMemory(0, 64, 1), std::invalid_argument);
  EXPECT_THROW(PositionMemory(4, 0, 1), std::invalid_argument);
}

TEST(LevelMemory, QuantizeClampsToRange) {
  const LevelMemory memory(8, 128, 0.0f, 1.0f, 1);
  EXPECT_EQ(memory.quantize(-5.0f), 0u);
  EXPECT_EQ(memory.quantize(0.0f), 0u);
  EXPECT_EQ(memory.quantize(1.0f), 7u);
  EXPECT_EQ(memory.quantize(99.0f), 7u);
}

TEST(LevelMemory, QuantizeIsMonotone) {
  const LevelMemory memory(16, 128, 0.0f, 1.0f, 2);
  std::size_t previous = 0;
  for (float v = 0.0f; v <= 1.0f; v += 0.01f) {
    const std::size_t q = memory.quantize(v);
    EXPECT_GE(q, previous);
    previous = q;
  }
}

TEST(LevelMemory, QuantizePartitionsEvenly) {
  const LevelMemory memory(4, 64, 0.0f, 1.0f, 3);
  EXPECT_EQ(memory.quantize(0.10f), 0u);
  EXPECT_EQ(memory.quantize(0.30f), 1u);
  EXPECT_EQ(memory.quantize(0.60f), 2u);
  EXPECT_EQ(memory.quantize(0.90f), 3u);
}

TEST(LevelMemory, HandlesNonUnitRanges) {
  const LevelMemory memory(10, 64, -4.0f, 6.0f, 4);
  EXPECT_EQ(memory.quantize(-4.0f), 0u);
  EXPECT_EQ(memory.quantize(6.0f), 9u);
  EXPECT_EQ(memory.quantize(1.0f), 5u);
}

TEST(LevelMemory, ForValueReturnsQuantizedLevel) {
  const LevelMemory memory(8, 64, 0.0f, 1.0f, 5);
  EXPECT_EQ(&memory.for_value(0.0f), &memory.at(0));
  EXPECT_EQ(&memory.for_value(1.0f), &memory.at(7));
}

TEST(LevelMemory, NeighboringLevelsCorrelated) {
  // Sec. 2: Hamm(V_{f_i}, V_{f_j}) ∝ |f_i − f_j| / (max − min).
  const LevelMemory memory(32, 8192, 0.0f, 1.0f, 6);
  const double near =
      hv::normalized_hamming(memory.at(0), memory.at(1));
  const double mid =
      hv::normalized_hamming(memory.at(0), memory.at(16));
  const double far =
      hv::normalized_hamming(memory.at(0), memory.at(31));
  EXPECT_LT(near, mid);
  EXPECT_LT(mid, far);
  EXPECT_NEAR(far, 0.5, 0.02);
  EXPECT_NEAR(mid, 0.25, 0.02);
}

TEST(LevelMemory, RejectsDegenerateConfigs) {
  EXPECT_THROW(LevelMemory(1, 64, 0.0f, 1.0f, 1), std::invalid_argument);
  EXPECT_THROW(LevelMemory(4, 64, 1.0f, 1.0f, 1), std::invalid_argument);
  EXPECT_THROW(LevelMemory(4, 64, 2.0f, 1.0f, 1), std::invalid_argument);
}

TEST(LevelMemory, BoundsChecked) {
  const LevelMemory memory(4, 64, 0.0f, 1.0f, 1);
  EXPECT_THROW((void)memory.at(4), std::invalid_argument);
}

}  // namespace
}  // namespace lehdc::hdc
