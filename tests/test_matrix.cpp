#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lehdc::nn {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), 0.0f);
    }
  }
}

TEST(Matrix, AtIsBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)m.at(0, 2), std::invalid_argument);
  EXPECT_THROW((void)m.row(2), std::invalid_argument);
}

TEST(Matrix, RowIsContiguousView) {
  Matrix m(2, 3);
  m.at(1, 0) = 7.0f;
  const auto row = m.row(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 7.0f);
  row[2] = 9.0f;
  EXPECT_EQ(m.at(1, 2), 9.0f);
}

TEST(Matrix, FillAndAddScaled) {
  Matrix a(2, 2);
  a.fill(1.0f);
  Matrix b(2, 2);
  b.fill(3.0f);
  a.add_scaled(b, 2.0f);
  EXPECT_EQ(a.at(0, 0), 7.0f);
  EXPECT_EQ(a.at(1, 1), 7.0f);
}

TEST(Matrix, AddScaledRejectsShapeMismatch) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a.add_scaled(b, 1.0f), std::invalid_argument);
}

TEST(Matrix, SquaredNormMatchesManual) {
  Matrix m(1, 3);
  m.at(0, 0) = 1.0f;
  m.at(0, 1) = 2.0f;
  m.at(0, 2) = -2.0f;
  EXPECT_DOUBLE_EQ(m.squared_norm(), 9.0);
}

TEST(Matrix, GaussianFillMoments) {
  util::Rng rng(1);
  Matrix m(100, 100);
  m.fill_gaussian(rng, 2.0f);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const float v : m.data()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.2);
}

TEST(Matrix, UniformFillRange) {
  util::Rng rng(2);
  Matrix m(10, 10);
  m.fill_uniform(rng, -1.0f, 1.0f);
  for (const float v : m.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, 1.0f);
  return m;
}

TEST(MatMulAbt, MatchesNaiveTripleLoop) {
  const Matrix a = random_matrix(7, 13, 3);
  const Matrix bT = random_matrix(5, 13, 4);
  Matrix out(7, 5);
  matmul_abt(a, bT, out);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t k = 0; k < 5; ++k) {
      float expected = 0.0f;
      for (std::size_t j = 0; j < 13; ++j) {
        expected += a.at(i, j) * bT.at(k, j);
      }
      ASSERT_NEAR(out.at(i, k), expected, 1e-4f);
    }
  }
}

TEST(MatMulAbt, RejectsBadShapes) {
  const Matrix a(2, 3);
  const Matrix bT(4, 5);  // inner dim mismatch
  Matrix out(2, 4);
  EXPECT_THROW(matmul_abt(a, bT, out), std::invalid_argument);
  const Matrix bT2(4, 3);
  Matrix wrong_out(3, 4);
  EXPECT_THROW(matmul_abt(a, bT2, wrong_out), std::invalid_argument);
}

TEST(AccumulateGta, MatchesNaiveTripleLoop) {
  const Matrix g = random_matrix(6, 4, 5);  // B x K
  const Matrix a = random_matrix(6, 9, 6);  // B x D
  Matrix out(4, 9);
  out.fill(0.5f);  // accumulation on top of existing contents
  Matrix expected = out;
  accumulate_gta(g, a, out);
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 9; ++j) {
      float sum = expected.at(k, j);
      for (std::size_t b = 0; b < 6; ++b) {
        sum += g.at(b, k) * a.at(b, j);
      }
      ASSERT_NEAR(out.at(k, j), sum, 1e-4f);
    }
  }
}

TEST(AccumulateGta, RejectsBadShapes) {
  const Matrix g(6, 4);
  const Matrix a(5, 9);  // batch mismatch
  Matrix out(4, 9);
  EXPECT_THROW(accumulate_gta(g, a, out), std::invalid_argument);
}

}  // namespace
}  // namespace lehdc::nn
