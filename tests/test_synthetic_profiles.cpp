// Tests for the synthetic generator and the benchmark profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "data/profiles.hpp"
#include "data/synthetic.hpp"

namespace lehdc::data {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig cfg;
  cfg.feature_count = 32;
  cfg.class_count = 4;
  cfg.train_count = 200;
  cfg.test_count = 80;
  cfg.seed = 5;
  return cfg;
}

TEST(Synthetic, ProducesRequestedShape) {
  const auto split = generate_synthetic(small_config());
  EXPECT_EQ(split.train.size(), 200u);
  EXPECT_EQ(split.test.size(), 80u);
  EXPECT_EQ(split.train.feature_count(), 32u);
  EXPECT_EQ(split.train.class_count(), 4u);
  EXPECT_EQ(split.test.class_count(), 4u);
}

TEST(Synthetic, ClassesAreBalanced) {
  const auto split = generate_synthetic(small_config());
  for (const auto count : split.train.class_histogram()) {
    EXPECT_EQ(count, 50u);
  }
  for (const auto count : split.test.class_histogram()) {
    EXPECT_EQ(count, 20u);
  }
}

TEST(Synthetic, ValuesInUnitInterval) {
  const auto split = generate_synthetic(small_config());
  const auto [lo, hi] = split.train.value_range();
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, 1.0f);
}

TEST(Synthetic, DeterministicPerSeed) {
  const auto a = generate_synthetic(small_config());
  const auto b = generate_synthetic(small_config());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    ASSERT_EQ(a.train.label(i), b.train.label(i));
    ASSERT_EQ(a.train.sample(i)[0], b.train.sample(i)[0]);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = generate_synthetic(cfg);
  cfg.seed = 6;
  const auto b = generate_synthetic(cfg);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.train.size() && !any_difference; ++i) {
    any_difference = a.train.sample(i)[0] != b.train.sample(i)[0];
  }
  EXPECT_TRUE(any_difference);
}

TEST(Synthetic, TestSamplesAreFreshDraws) {
  const auto split = generate_synthetic(small_config());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    for (std::size_t j = 0; j < split.train.size(); ++j) {
      ASSERT_NE(split.test.sample(i)[0], split.train.sample(j)[0]);
    }
  }
}

TEST(Synthetic, SmoothingIncreasesNeighborCorrelation) {
  auto cfg = small_config();
  cfg.feature_count = 256;
  cfg.smoothing_window = 1;
  const auto rough = generate_synthetic(cfg);
  cfg.smoothing_window = 9;
  const auto smooth = generate_synthetic(cfg);

  const auto neighbor_gap = [](const Dataset& dataset) {
    double total = 0.0;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      const auto row = dataset.sample(i);
      for (std::size_t j = 0; j + 1 < row.size(); ++j) {
        total += std::abs(row[j] - row[j + 1]);
      }
    }
    return total / static_cast<double>(dataset.size());
  };
  EXPECT_LT(neighbor_gap(smooth.train), neighbor_gap(rough.train));
}

TEST(Synthetic, ValidatesConfig) {
  auto cfg = small_config();
  cfg.class_count = 1;
  EXPECT_THROW((void)generate_synthetic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.prototypes_per_class = 0;
  EXPECT_THROW((void)generate_synthetic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.shared_atoms = 0;
  EXPECT_THROW((void)generate_synthetic(cfg), std::invalid_argument);
}

TEST(Profiles, AllSixBenchmarksHavePaperShapes) {
  const auto ids = all_benchmarks();
  ASSERT_EQ(ids.size(), 6u);
  const auto mnist = profile(BenchmarkId::kMnist);
  EXPECT_EQ(mnist.config.feature_count, 784u);
  EXPECT_EQ(mnist.config.class_count, 10u);
  EXPECT_EQ(mnist.config.train_count, 60000u);
  EXPECT_EQ(mnist.config.test_count, 10000u);
  const auto cifar = profile(BenchmarkId::kCifar10);
  EXPECT_EQ(cifar.config.feature_count, 3072u);
  const auto isolet = profile(BenchmarkId::kIsolet);
  EXPECT_EQ(isolet.config.class_count, 26u);
  const auto ucihar = profile(BenchmarkId::kUcihar);
  EXPECT_EQ(ucihar.config.feature_count, 561u);
  EXPECT_EQ(ucihar.config.class_count, 6u);
}

TEST(Profiles, NamesMatchPaperColumns) {
  EXPECT_EQ(profile(BenchmarkId::kMnist).name, "MNIST");
  EXPECT_EQ(profile(BenchmarkId::kFashionMnist).name, "Fashion-MNIST");
  EXPECT_EQ(profile(BenchmarkId::kCifar10).name, "CIFAR-10");
  EXPECT_EQ(profile(BenchmarkId::kPamap).name, "PAMAP");
}

TEST(Profiles, LookupByNameIsFlexible) {
  EXPECT_EQ(profile_by_name("mnist").id, BenchmarkId::kMnist);
  EXPECT_EQ(profile_by_name("Fashion-MNIST").id,
            BenchmarkId::kFashionMnist);
  EXPECT_EQ(profile_by_name("fashion_mnist").id,
            BenchmarkId::kFashionMnist);
  EXPECT_EQ(profile_by_name("CIFAR 10").id, BenchmarkId::kCifar10);
  EXPECT_EQ(profile_by_name("pamap2").id, BenchmarkId::kPamap);
  EXPECT_THROW((void)profile_by_name("imagenet"), std::invalid_argument);
}

TEST(Profiles, ScaledShrinksSampleCounts) {
  const auto full = profile(BenchmarkId::kMnist);
  const auto small = scaled(full, 0.1);
  EXPECT_EQ(small.config.train_count, 6000u);
  EXPECT_EQ(small.config.test_count, 1000u);
  EXPECT_EQ(small.config.feature_count, full.config.feature_count);
}

TEST(Profiles, ScaledAppliesFloors) {
  const auto isolet = scaled(profile(BenchmarkId::kIsolet), 0.01);
  // 40 samples per class minimum for a 26-class benchmark.
  EXPECT_GE(isolet.config.train_count, 26u * 40u);
  EXPECT_GE(isolet.config.test_count, 200u);
}

TEST(Profiles, ScaledNeverExceedsOriginal) {
  const auto pamap = scaled(profile(BenchmarkId::kPamap), 1.0);
  EXPECT_EQ(pamap.config.train_count,
            profile(BenchmarkId::kPamap).config.train_count);
}

TEST(Profiles, ScaledCapsFeatures) {
  const auto cifar = scaled(profile(BenchmarkId::kCifar10), 0.5, 1024);
  EXPECT_EQ(cifar.config.feature_count, 1024u);
}

TEST(Profiles, ScaledValidatesScale) {
  EXPECT_THROW((void)scaled(profile(BenchmarkId::kMnist), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)scaled(profile(BenchmarkId::kMnist), 1.5),
               std::invalid_argument);
}

TEST(Profiles, Generatable) {
  // Every profile must generate at a small scale without error.
  for (const auto id : all_benchmarks()) {
    const auto p = scaled(profile(id), 0.01);
    const auto split = generate_synthetic(p.config);
    EXPECT_GT(split.train.size(), 0u);
    EXPECT_EQ(split.train.feature_count(), p.config.feature_count);
  }
}

}  // namespace
}  // namespace lehdc::data
