// Tests for the extension modules: projection encoder, encoded-dataset
// cache, pipeline bundles, online learning, hardware cost model.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "core/online.hpp"
#include "core/pipeline_io.hpp"
#include "data/synthetic.hpp"
#include "eval/hardware_model.hpp"
#include "hdc/dataset_io.hpp"
#include "hdc/projection_encoder.hpp"
#include "train/baseline.hpp"
#include "hv/similarity.hpp"
#include "train_test_util.hpp"

namespace lehdc {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------- encoder

hdc::ProjectionEncoderConfig projection_config() {
  hdc::ProjectionEncoderConfig cfg;
  cfg.dim = 1024;
  cfg.feature_count = 32;
  cfg.seed = 3;
  return cfg;
}

TEST(ProjectionEncoder, ShapeAndDeterminism) {
  const hdc::ProjectionEncoder encoder(projection_config());
  EXPECT_EQ(encoder.dim(), 1024u);
  EXPECT_EQ(encoder.feature_count(), 32u);
  util::Rng rng(1);
  std::vector<float> sample(32);
  for (auto& v : sample) {
    v = rng.next_float();
  }
  EXPECT_EQ(encoder.encode(sample), encoder.encode(sample));
}

TEST(ProjectionEncoder, RejectsWrongWidth) {
  const hdc::ProjectionEncoder encoder(projection_config());
  EXPECT_THROW((void)encoder.encode(std::vector<float>(31, 0.5f)),
               std::invalid_argument);
}

TEST(ProjectionEncoder, LocalityPreserving) {
  const hdc::ProjectionEncoder encoder(projection_config());
  util::Rng rng(2);
  std::vector<float> sample(32);
  for (auto& v : sample) {
    v = rng.next_float();
  }
  auto nudged = sample;
  nudged[0] += 0.02f;
  std::vector<float> other(32);
  for (auto& v : other) {
    v = rng.next_float();
  }
  const auto code = encoder.encode(sample);
  EXPECT_LT(hv::normalized_hamming(code, encoder.encode(nudged)),
            hv::normalized_hamming(code, encoder.encode(other)));
}

TEST(ProjectionEncoder, BalancedOutput) {
  // sgn of a centered random projection should produce ~50% of each sign.
  const hdc::ProjectionEncoder encoder(projection_config());
  util::Rng rng(4);
  std::vector<float> sample(32);
  for (auto& v : sample) {
    v = rng.next_float();
  }
  const auto code = encoder.encode(sample);
  const double fraction =
      static_cast<double>(code.count_negatives()) /
      static_cast<double>(code.dim());
  EXPECT_NEAR(fraction, 0.5, 0.1);
}

TEST(ProjectionEncoder, TrainsThroughTheStack) {
  // End-to-end: projection-encoded data is learnable by the trainers.
  data::SyntheticConfig synth;
  synth.feature_count = 32;
  synth.class_count = 3;
  synth.train_count = 120;
  synth.test_count = 45;
  synth.class_separation = 1.2;
  synth.noise_stddev = 0.2;
  synth.prototypes_per_class = 1;
  synth.seed = 5;
  const auto split = generate_synthetic(synth);
  const hdc::ProjectionEncoder encoder(projection_config());
  const auto train_set = hdc::encode_dataset(encoder, split.train);
  const auto test_set = hdc::encode_dataset(encoder, split.test);
  const train::BaselineTrainer trainer;
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(train_set, options);
  EXPECT_GT(result.model->accuracy(test_set), 0.85);
}

// ------------------------------------------------------------ dataset i/o

TEST(DatasetIo, RoundTrip) {
  const auto fixture = test::make_encoded_fixture(3, 300, 5, 0, 20, 6);
  const auto path = temp_path("cache.lhdd");
  hdc::save_encoded_dataset(fixture.train, path);
  const hdc::EncodedDataset loaded = hdc::load_encoded_dataset(path);
  ASSERT_EQ(loaded.size(), fixture.train.size());
  EXPECT_EQ(loaded.dim(), fixture.train.dim());
  EXPECT_EQ(loaded.class_count(), fixture.train.class_count());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded.label(i), fixture.train.label(i));
    ASSERT_EQ(loaded.hypervector(i), fixture.train.hypervector(i));
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW((void)hdc::load_encoded_dataset(temp_path("no.lhdd")),
               std::runtime_error);
}

TEST(DatasetIo, RejectsWrongMagic) {
  const auto path = temp_path("wrong.lhdd");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("LHDCxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)hdc::load_encoded_dataset(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- pipeline i/o

core::Pipeline fitted_pipeline(const data::TrainTestSplit& split) {
  core::PipelineConfig cfg;
  cfg.dim = 512;
  cfg.seed = 7;
  cfg.strategy = core::Strategy::kLeHdc;
  cfg.lehdc.epochs = 8;
  cfg.lehdc.batch_size = 16;
  core::Pipeline pipeline(cfg);
  (void)pipeline.fit(split.train);
  return pipeline;
}

data::TrainTestSplit bundle_split() {
  data::SyntheticConfig synth;
  synth.feature_count = 20;
  synth.class_count = 3;
  synth.train_count = 90;
  synth.test_count = 30;
  synth.class_separation = 1.2;
  synth.noise_stddev = 0.2;
  synth.prototypes_per_class = 1;
  synth.seed = 8;
  return generate_synthetic(synth);
}

TEST(PipelineIo, BundleRoundTripPredictsIdentically) {
  const auto split = bundle_split();
  core::Pipeline original = fitted_pipeline(split);
  const auto path = temp_path("bundle.lhdp");
  core::save_pipeline(original, path);
  core::Pipeline restored = core::load_pipeline(path);
  EXPECT_TRUE(restored.fitted());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ASSERT_EQ(restored.predict(split.test.sample(i)),
              original.predict(split.test.sample(i)));
  }
  EXPECT_EQ(restored.config().strategy, core::Strategy::kLeHdc);
  EXPECT_EQ(restored.config().dim, 512u);
  std::remove(path.c_str());
}

TEST(PipelineIo, RejectsUnfittedPipeline) {
  core::PipelineConfig cfg;
  cfg.dim = 128;
  const core::Pipeline pipeline(cfg);
  EXPECT_THROW(core::save_pipeline(pipeline, temp_path("x.lhdp")),
               std::invalid_argument);
}

TEST(PipelineIo, MissingFileThrows) {
  EXPECT_THROW((void)core::load_pipeline(temp_path("no.lhdp")),
               std::runtime_error);
}

TEST(PipelineRestore, ValidatesDimensions) {
  core::PipelineConfig cfg;
  cfg.dim = 128;
  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = 256;  // mismatch
  encoder_cfg.feature_count = 4;
  std::vector<hv::BitVector> classes(2, hv::BitVector(128));
  EXPECT_THROW((void)core::Pipeline::restore(
                   cfg, encoder_cfg,
                   hdc::BinaryClassifier(std::move(classes))),
               std::invalid_argument);
}

// -------------------------------------------------------- online learner

TEST(OnlineLearner, CentroidStreamMatchesBatchBaseline) {
  const auto fixture = test::make_encoded_fixture(3, 256, 10, 5, 25, 9);
  core::OnlineConfig cfg;
  cfg.dim = 256;
  cfg.class_count = 3;
  cfg.mode = core::OnlineMode::kCentroid;
  cfg.seed = 77;
  core::OnlineHdcLearner learner(cfg);
  for (std::size_t i = 0; i < fixture.train.size(); ++i) {
    learner.observe(fixture.train.hypervector(i), fixture.train.label(i));
  }
  EXPECT_EQ(learner.observed(), fixture.train.size());
  EXPECT_EQ(learner.updates(), fixture.train.size());
  // Same accumulation as Eq. 2 with the same tie-break seed.
  const auto batch = train::bundle_classes(fixture.train, 77);
  const auto snapshot = learner.snapshot();
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(snapshot.class_hypervector(k), batch[k]);
  }
}

TEST(OnlineLearner, PerceptronSkipsCorrectSamples) {
  const auto fixture = test::make_encoded_fixture(2, 256, 20, 5, 10, 10);
  core::OnlineConfig cfg;
  cfg.dim = 256;
  cfg.class_count = 2;
  cfg.mode = core::OnlineMode::kPerceptron;
  core::OnlineHdcLearner learner(cfg);
  for (std::size_t i = 0; i < fixture.train.size(); ++i) {
    learner.observe(fixture.train.hypervector(i), fixture.train.label(i));
  }
  // Once the classes are pinned down, further samples stop updating.
  EXPECT_LT(learner.updates(), learner.observed());
  EXPECT_GT(learner.accuracy(fixture.test), 0.85);
}

TEST(OnlineLearner, ImprovesOverTheStream) {
  const auto fixture = test::make_hard_fixture(41, 256);
  core::OnlineConfig cfg;
  cfg.dim = 256;
  cfg.class_count = fixture.train.class_count();
  cfg.mode = core::OnlineMode::kPerceptron;
  core::OnlineHdcLearner learner(cfg);
  const std::size_t half = fixture.train.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    learner.observe(fixture.train.hypervector(i), fixture.train.label(i));
  }
  const double mid_accuracy = learner.accuracy(fixture.test);
  for (std::size_t i = half; i < fixture.train.size(); ++i) {
    learner.observe(fixture.train.hypervector(i), fixture.train.label(i));
  }
  EXPECT_GE(learner.accuracy(fixture.test), mid_accuracy - 0.05);
  EXPECT_GT(learner.accuracy(fixture.test), 0.35);
}

TEST(OnlineLearner, ValidatesInput) {
  core::OnlineConfig cfg;
  cfg.dim = 64;
  cfg.class_count = 2;
  core::OnlineHdcLearner learner(cfg);
  EXPECT_THROW(learner.observe(hv::BitVector(32), 0),
               std::invalid_argument);
  EXPECT_THROW(learner.observe(hv::BitVector(64), 2),
               std::invalid_argument);
  EXPECT_THROW((void)learner.predict(hv::BitVector(32)),
               std::invalid_argument);
  core::OnlineConfig bad;
  bad.class_count = 1;
  EXPECT_THROW(core::OnlineHdcLearner{bad}, std::invalid_argument);
}

// -------------------------------------------------------- hardware model

TEST(HardwareModel, LeHdcMatchesBaseline) {
  const eval::ResourceParams params;
  const eval::HardwareConfig hardware;
  const auto baseline =
      eval::estimate_hardware(core::Strategy::kBaseline, params, hardware);
  const auto lehdc =
      eval::estimate_hardware(core::Strategy::kLeHdc, params, hardware);
  EXPECT_EQ(lehdc.cycles_per_query, baseline.cycles_per_query);
  EXPECT_EQ(lehdc.latency_us, baseline.latency_us);
  EXPECT_EQ(lehdc.energy_nj, baseline.energy_nj);
}

TEST(HardwareModel, LatencyIsMicrosecondClass) {
  // Sec. 5.1: accelerated inference runs "in microseconds" at D = 10,000.
  eval::ResourceParams params;
  params.dim = 10000;
  params.classes = 10;
  const eval::HardwareConfig hardware;
  const auto estimate =
      eval::estimate_hardware(core::Strategy::kBaseline, params, hardware);
  EXPECT_LT(estimate.latency_us, 10.0);
  EXPECT_GT(estimate.latency_us, 0.0);
}

TEST(HardwareModel, MultiModelScalesLinearly) {
  eval::ResourceParams params;
  params.models_per_class = 16;
  const eval::HardwareConfig hardware;
  const auto baseline =
      eval::estimate_hardware(core::Strategy::kBaseline, params, hardware);
  const auto multi =
      eval::estimate_hardware(core::Strategy::kMultiModel, params, hardware);
  EXPECT_NEAR(static_cast<double>(multi.cycles_per_query),
              16.0 * static_cast<double>(baseline.cycles_per_query),
              static_cast<double>(baseline.cycles_per_query));
  EXPECT_DOUBLE_EQ(multi.energy_nj, 16.0 * baseline.energy_nj);
}

TEST(HardwareModel, MoreLanesReduceLatency) {
  const eval::ResourceParams params;
  eval::HardwareConfig narrow;
  narrow.lanes = 8;
  eval::HardwareConfig wide;
  wide.lanes = 256;
  const auto slow =
      eval::estimate_hardware(core::Strategy::kBaseline, params, narrow);
  const auto fast =
      eval::estimate_hardware(core::Strategy::kBaseline, params, wide);
  EXPECT_LT(fast.latency_us, slow.latency_us);
}

TEST(HardwareModel, ValidatesConfig) {
  const eval::ResourceParams params;
  eval::HardwareConfig bad;
  bad.clock_mhz = 0.0;
  EXPECT_THROW(
      (void)eval::estimate_hardware(core::Strategy::kBaseline, params, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace lehdc
