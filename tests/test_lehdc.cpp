// Tests for the LeHDC trainer — the paper's core contribution (Sec. 4).
#include "core/lehdc_trainer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "train/baseline.hpp"
#include "train/retrain.hpp"
#include "train_test_util.hpp"

namespace lehdc::core {
namespace {

using test::make_encoded_fixture;
using test::make_multimodal_fixture;

LeHdcConfig fast_config() {
  LeHdcConfig cfg;
  cfg.epochs = 15;
  cfg.batch_size = 16;
  cfg.learning_rate = 0.01f;
  cfg.weight_decay = 0.01f;
  cfg.dropout_rate = 0.2f;
  return cfg;
}

TEST(LeHdc, LearnsSeparableData) {
  const auto fixture = make_encoded_fixture(4, 512, 16, 8, 60, 1);
  const LeHdcTrainer trainer(fast_config());
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_EQ(result.model->accuracy(fixture.test), 1.0);
}

TEST(LeHdc, BeatsBaselineOnHardData) {
  // The core claim: learned class hypervectors beat Eq. 2 averaging where
  // averaging is structurally weak (Table 1's qualitative result).
  const auto fixture = test::make_hard_fixture(31);
  train::TrainOptions options;
  options.seed = 1;
  const train::BaselineTrainer baseline;
  const double base_acc =
      baseline.train(fixture.train, options).model->accuracy(fixture.test);
  auto cfg = fast_config();
  cfg.epochs = 25;
  const LeHdcTrainer lehdc(cfg);
  const double lehdc_acc =
      lehdc.train(fixture.train, options).model->accuracy(fixture.test);
  EXPECT_GT(lehdc_acc, base_acc);
}

TEST(LeHdc, ExportsPlainBinaryClassifier) {
  // The zero-overhead property (Sec. 4): the deployed model is exactly K
  // binary hypervectors — indistinguishable in shape from the baseline's.
  const auto fixture = make_encoded_fixture(3, 256, 8, 0, 20, 3);
  const LeHdcTrainer trainer(fast_config());
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  const auto* binary = result.model->as_binary();
  ASSERT_NE(binary, nullptr);
  EXPECT_EQ(binary->class_count(), 3u);
  EXPECT_EQ(binary->dim(), 256u);
  EXPECT_EQ(result.model->storage_bits(), 3u * 256u);
}

TEST(LeHdc, NonBinaryVariantExportsIntModel) {
  auto cfg = fast_config();
  cfg.non_binary_model = true;
  const auto fixture = make_encoded_fixture(3, 256, 8, 4, 20, 4);
  const LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_EQ(result.model->as_binary(), nullptr);
  EXPECT_GT(result.model->accuracy(fixture.test), 0.9);
}

TEST(LeHdc, TrajectoryHasOnePointPerEpoch) {
  const auto fixture = make_encoded_fixture(2, 256, 8, 4, 20, 5);
  auto cfg = fast_config();
  cfg.epochs = 7;
  const LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  options.test = &fixture.test;
  options.epoch_observer = train::record_trajectory();
  const auto result = trainer.train(fixture.train, options);
  ASSERT_EQ(result.trajectory.size(), 7u);
  EXPECT_EQ(result.epochs_run, 7u);
  for (std::size_t e = 0; e < 7; ++e) {
    EXPECT_EQ(result.trajectory[e].epoch, e);
    EXPECT_GE(result.trajectory[e].train_loss, 0.0);
  }
}

TEST(LeHdc, LossDecreasesOverTraining) {
  const auto fixture = make_encoded_fixture(4, 512, 16, 0, 80, 6);
  auto cfg = fast_config();
  cfg.epochs = 12;
  cfg.dropout_rate = 0.0f;
  cfg.weight_decay = 0.0f;
  // The warm start already saturates the softmax on separable data (loss
  // numerically 0); random init exposes the optimization trajectory.
  cfg.init = LeHdcConfig::Init::kRandom;
  const LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  options.epoch_observer = train::record_trajectory();
  const auto result = trainer.train(fixture.train, options);
  EXPECT_LT(result.trajectory.back().train_loss,
            result.trajectory.front().train_loss);
}

TEST(LeHdc, DeterministicPerSeed) {
  const auto fixture = make_encoded_fixture(3, 256, 8, 4, 20, 7);
  const LeHdcTrainer trainer(fast_config());
  train::TrainOptions options;
  options.seed = 11;
  const auto a = trainer.train(fixture.train, options);
  const auto b = trainer.train(fixture.train, options);
  const auto* binary_a = a.model->as_binary();
  const auto* binary_b = b.model->as_binary();
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(binary_a->class_hypervector(k),
              binary_b->class_hypervector(k));
  }
}

TEST(LeHdc, SgdVariantTrains) {
  auto cfg = fast_config();
  cfg.use_adam = false;
  cfg.learning_rate = 0.05f;
  const auto fixture = make_encoded_fixture(3, 256, 10, 5, 30, 8);
  const LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_GT(result.model->accuracy(fixture.test), 0.8);
}

TEST(LeHdc, FloatForwardVariantTrains) {
  auto cfg = fast_config();
  cfg.binary_forward = false;
  const auto fixture = make_encoded_fixture(3, 256, 10, 5, 30, 9);
  const LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_GT(result.model->accuracy(fixture.test), 0.8);
}

TEST(LeHdc, RandomInitVariantTrains) {
  auto cfg = fast_config();
  cfg.init = LeHdcConfig::Init::kRandom;
  cfg.epochs = 25;
  const auto fixture = make_encoded_fixture(3, 256, 12, 6, 30, 10);
  const LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_GT(result.model->accuracy(fixture.test), 0.8);
}

TEST(LeHdc, BatchLargerThanDatasetIsClamped) {
  auto cfg = fast_config();
  cfg.batch_size = 10000;
  const auto fixture = make_encoded_fixture(2, 128, 6, 3, 10, 11);
  const LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 1;
  const auto result = trainer.train(fixture.train, options);
  EXPECT_GT(result.model->accuracy(fixture.test), 0.8);
}

TEST(LeHdc, ValidatesConfig) {
  LeHdcConfig bad;
  bad.learning_rate = 0.0f;
  EXPECT_THROW(LeHdcTrainer{bad}, std::invalid_argument);
  LeHdcConfig bad_dropout;
  bad_dropout.dropout_rate = 1.0f;
  EXPECT_THROW(LeHdcTrainer{bad_dropout}, std::invalid_argument);
  LeHdcConfig bad_batch;
  bad_batch.batch_size = 0;
  EXPECT_THROW(LeHdcTrainer{bad_batch}, std::invalid_argument);
  LeHdcConfig bad_epochs;
  bad_epochs.epochs = 0;
  EXPECT_THROW(LeHdcTrainer{bad_epochs}, std::invalid_argument);
}

TEST(LeHdc, RejectsEmptyDataset) {
  const hdc::EncodedDataset empty(64, 2);
  const LeHdcTrainer trainer(fast_config());
  train::TrainOptions options;
  EXPECT_THROW((void)trainer.train(empty, options), std::invalid_argument);
}

TEST(LeHdc, NameIsLeHDC) {
  EXPECT_EQ(LeHdcTrainer().name(), "LeHDC");
}

}  // namespace
}  // namespace lehdc::core
