#include "hv/intvector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "hv/similarity.hpp"
#include "util/rng.hpp"

namespace lehdc::hv {
namespace {

TEST(IntVector, StartsAtZero) {
  const IntVector v(10);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(v.get(i), 0);
  }
}

TEST(IntVector, ConstructsFromBitVector) {
  BitVector bits(4);
  bits.set(1, -1);
  const IntVector v(bits);
  EXPECT_EQ(v.get(0), 1);
  EXPECT_EQ(v.get(1), -1);
  EXPECT_EQ(v.get(2), 1);
  EXPECT_EQ(v.get(3), 1);
}

TEST(IntVector, AddAccumulatesBipolarValues) {
  util::Rng rng(1);
  const BitVector a = BitVector::random(64, rng);
  const BitVector b = BitVector::random(64, rng);
  IntVector acc(64);
  acc.add(a);
  acc.add(b);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(acc.get(i), a.get(i) + b.get(i));
  }
}

TEST(IntVector, SubtractIsInverseOfAdd) {
  util::Rng rng(2);
  const BitVector a = BitVector::random(100, rng);
  IntVector acc(100);
  acc.add(a);
  acc.subtract(a);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(acc.get(i), 0);
  }
}

TEST(IntVector, AddScaledAppliesScale) {
  BitVector bits(3);
  bits.set(2, -1);
  IntVector acc(3);
  acc.add_scaled(bits, 5);
  EXPECT_EQ(acc.get(0), 5);
  EXPECT_EQ(acc.get(2), -5);
}

TEST(IntVector, AddIntVector) {
  IntVector a(3);
  a.set(0, 2);
  IntVector b(3);
  b.set(0, 3);
  b.set(2, -1);
  a.add(b);
  EXPECT_EQ(a.get(0), 5);
  EXPECT_EQ(a.get(2), -1);
}

TEST(IntVector, DimensionMismatchThrows) {
  IntVector acc(10);
  const BitVector wrong(11);
  EXPECT_THROW(acc.add(wrong), std::invalid_argument);
  EXPECT_THROW((void)acc.dot(wrong), std::invalid_argument);
}

TEST(IntVector, SignBinarizesWithDeterministicTies) {
  IntVector v(4);
  v.set(0, 3);
  v.set(1, -2);
  v.set(2, 0);
  v.set(3, -1);
  const BitVector sign = v.sign();
  EXPECT_EQ(sign.get(0), 1);
  EXPECT_EQ(sign.get(1), -1);
  EXPECT_EQ(sign.get(2), 1);  // sgn(0) = +1 deterministically
  EXPECT_EQ(sign.get(3), -1);
}

TEST(IntVector, SignUsesTieBreakOnZeros) {
  IntVector v(3);
  v.set(0, 0);
  v.set(1, 0);
  v.set(2, 7);
  BitVector tie(3);
  tie.set(0, -1);
  const BitVector sign = v.sign(tie);
  EXPECT_EQ(sign.get(0), -1);  // tie broken toward the tie-break component
  EXPECT_EQ(sign.get(1), 1);
  EXPECT_EQ(sign.get(2), 1);
}

TEST(IntVector, DotMatchesManual) {
  util::Rng rng(3);
  const BitVector bits = BitVector::random(50, rng);
  IntVector v(50);
  for (std::size_t i = 0; i < 50; ++i) {
    v.set(i, static_cast<std::int32_t>(rng.next_below(21)) - 10);
  }
  std::int64_t manual = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    manual += static_cast<std::int64_t>(v.get(i)) * bits.get(i);
  }
  EXPECT_EQ(v.dot(bits), manual);
}

TEST(IntVector, NormMatchesEuclidean) {
  IntVector v(3);
  v.set(0, 3);
  v.set(1, 4);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(IntVector, CosineWithItselfAsBitsIsOne) {
  util::Rng rng(4);
  const BitVector bits = BitVector::random(128, rng);
  const IntVector v(bits);
  EXPECT_NEAR(v.cosine(bits), 1.0, 1e-12);
}

TEST(IntVector, CosineOfZeroVectorIsZero) {
  const IntVector v(16);
  util::Rng rng(5);
  const BitVector bits = BitVector::random(16, rng);
  EXPECT_EQ(v.cosine(bits), 0.0);
}

TEST(IntVector, IntIntCosine) {
  IntVector a(2);
  a.set(0, 1);
  IntVector b(2);
  b.set(1, 1);
  EXPECT_EQ(cosine(a, b), 0.0);
  EXPECT_NEAR(cosine(a, a), 1.0, 1e-12);
}

TEST(Similarity, CosineHammingIdentity) {
  // The paper's key identity (Sec. 3.1): cosine = 1 − 2·Hamm for bipolar
  // hypervectors.
  util::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVector a = BitVector::random(500, rng);
    const BitVector b = BitVector::random(500, rng);
    const double via_identity = cosine(a, b);
    const IntVector ai(a);
    const IntVector bi(b);
    double dot = 0.0;
    for (std::size_t i = 0; i < 500; ++i) {
      dot += static_cast<double>(ai.get(i)) * bi.get(i);
    }
    const double direct = dot / 500.0;  // |a| = |b| = sqrt(D)
    ASSERT_NEAR(via_identity, direct, 1e-12);
  }
}

TEST(Similarity, SelfSimilarity) {
  util::Rng rng(7);
  const BitVector a = BitVector::random(200, rng);
  EXPECT_EQ(normalized_hamming(a, a), 0.0);
  EXPECT_EQ(cosine(a, a), 1.0);
}

TEST(Similarity, ComplementSimilarity) {
  util::Rng rng(8);
  BitVector a = BitVector::random(100, rng);
  BitVector b = a;
  for (std::size_t i = 0; i < 100; ++i) {
    b.flip(i);
  }
  EXPECT_EQ(normalized_hamming(a, b), 1.0);
  EXPECT_EQ(cosine(a, b), -1.0);
}

TEST(Similarity, RandomPairsNearHalfDistance) {
  util::Rng rng(9);
  const BitVector a = BitVector::random(10000, rng);
  const BitVector b = BitVector::random(10000, rng);
  EXPECT_NEAR(normalized_hamming(a, b), 0.5, 0.03);
}

}  // namespace
}  // namespace lehdc::hv
