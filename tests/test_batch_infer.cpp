// Batch-first inference: the batched paths must be bit-identical to the
// per-sample predict of every classifier kind, for every batch size and
// every worker count, and accuracy must be invariant to the worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/batch_scorer.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hv/batch_score.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lehdc {
namespace {

std::vector<hv::BitVector> random_hvs(std::size_t count, std::size_t dim,
                                      util::Rng& rng) {
  std::vector<hv::BitVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(hv::BitVector::random(dim, rng));
  }
  return out;
}

// Worker counts every parity property is checked under: serial, small
// fixed, and whatever the hardware offers (0 = hardware sizing).
const std::size_t kWorkerCounts[] = {1, 4, 0};

// ------------------------------------------------------------- kernels ---

TEST(BatchScoreKernel, HammingMatchesBitVectorAcrossDims) {
  util::Rng rng(7);
  // Dims straddling the 64-bit word and 512/256-bit vector boundaries so
  // both the blocked body and the ragged tail paths are exercised.
  for (const std::size_t dim :
       {std::size_t{1}, std::size_t{5}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{129}, std::size_t{512},
        std::size_t{1000}, std::size_t{2049}}) {
    const hv::BitVector a = hv::BitVector::random(dim, rng);
    const hv::BitVector b = hv::BitVector::random(dim, rng);
    EXPECT_EQ(hv::hamming_words(a.words().data(), b.words().data(),
                                a.word_count()),
              hv::BitVector::hamming(a, b))
        << "dim=" << dim;
  }
}

TEST(BatchScoreKernel, DotRowsMatchesBitVectorDot) {
  util::Rng rng(11);
  const std::size_t dim = 777;  // ragged tail in every kernel tier
  const hv::BitVector query = hv::BitVector::random(dim, rng);
  // 1..9 rows: covers the 4-row blocked path plus every remainder count.
  for (std::size_t count = 1; count <= 9; ++count) {
    const auto classes = random_hvs(count, dim, rng);
    std::vector<const std::uint64_t*> rows;
    for (const auto& c : classes) {
      rows.push_back(c.words().data());
    }
    std::vector<std::int64_t> out(count);
    hv::dot_rows(query.words().data(), rows, dim, out);
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_EQ(out[k], hv::BitVector::dot(query, classes[k]))
          << "rows=" << count << " k=" << k;
    }
  }
}

TEST(BatchScoreKernel, DotScoresBatchMatchesPairwise) {
  util::Rng rng(13);
  const std::size_t dim = 320;
  const auto queries = random_hvs(17, dim, rng);
  const auto classes = random_hvs(6, dim, rng);
  std::vector<std::int64_t> out(queries.size() * classes.size());
  hv::dot_scores_batch(queries, classes, out);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t k = 0; k < classes.size(); ++k) {
      EXPECT_EQ(out[q * classes.size() + k],
                hv::BitVector::dot(queries[q], classes[k]));
    }
  }
}

TEST(BatchScoreKernel, ReportsAKernelName) {
  EXPECT_NE(hv::score_kernel_name(), nullptr);
  EXPECT_GT(std::string(hv::score_kernel_name()).size(), 0u);
}

// ----------------------------------------------- classifier kind parity ---

TEST(BatchScorer, BinaryPredictBatchMatchesPerSample) {
  util::Rng rng(3);
  const std::size_t dim = 503;
  const hdc::BinaryClassifier classifier(random_hvs(7, dim, rng));
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{1000}}) {
    const auto queries = random_hvs(batch, dim, rng);
    for (const std::size_t workers : kWorkerCounts) {
      util::ThreadPool pool(workers);
      const hdc::BatchScorer scorer(classifier, &pool);
      std::vector<int> out(batch, -1);
      scorer.predict_batch(queries, out);
      for (std::size_t i = 0; i < batch; ++i) {
        ASSERT_EQ(out[i], classifier.predict(queries[i]))
            << "batch=" << batch << " workers=" << workers << " i=" << i;
      }
    }
  }
}

TEST(BatchScorer, EnsemblePredictBatchMatchesPerSample) {
  util::Rng rng(5);
  const std::size_t dim = 503;
  std::vector<std::vector<hv::BitVector>> models;
  for (std::size_t k = 0; k < 5; ++k) {
    models.push_back(random_hvs(3, dim, rng));
  }
  const hdc::EnsembleClassifier classifier(std::move(models));
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{1000}}) {
    const auto queries = random_hvs(batch, dim, rng);
    for (const std::size_t workers : kWorkerCounts) {
      util::ThreadPool pool(workers);
      const hdc::BatchScorer scorer(classifier, &pool);
      std::vector<int> out(batch, -1);
      scorer.predict_batch(queries, out);
      for (std::size_t i = 0; i < batch; ++i) {
        ASSERT_EQ(out[i], classifier.predict(queries[i]))
            << "batch=" << batch << " workers=" << workers << " i=" << i;
      }
    }
  }
}

TEST(BatchScorer, NonBinaryPredictBatchMatchesPerSample) {
  util::Rng rng(9);
  const std::size_t dim = 503;
  std::vector<hv::IntVector> classes;
  for (std::size_t k = 0; k < 6; ++k) {
    hv::IntVector accumulator(dim);
    for (std::size_t s = 0; s < 5; ++s) {
      accumulator.add(hv::BitVector::random(dim, rng));
    }
    classes.push_back(std::move(accumulator));
  }
  const hdc::NonBinaryClassifier classifier(std::move(classes));
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{1000}}) {
    const auto queries = random_hvs(batch, dim, rng);
    for (const std::size_t workers : kWorkerCounts) {
      util::ThreadPool pool(workers);
      const hdc::BatchScorer scorer(classifier, &pool);
      std::vector<int> out(batch, -1);
      scorer.predict_batch(queries, out);
      for (std::size_t i = 0; i < batch; ++i) {
        ASSERT_EQ(out[i], classifier.predict(queries[i]))
            << "batch=" << batch << " workers=" << workers << " i=" << i;
      }
    }
  }
}

TEST(BatchScorer, EmptyBatchIsANoOp) {
  util::Rng rng(41);
  const hdc::BinaryClassifier classifier(random_hvs(3, 256, rng));
  const hdc::BatchScorer scorer(classifier);
  std::vector<hv::BitVector> queries;
  std::vector<int> labels;
  scorer.predict_batch(queries, labels);  // must not touch the pool or crash
  std::vector<std::int64_t> scores;
  scorer.scores_batch(queries, scores);
  EXPECT_TRUE(labels.empty());
  EXPECT_TRUE(scores.empty());
}

TEST(BatchScorer, BatchesBelowKernelTileMatchPerSample) {
  // The dot kernel blocks class rows four at a time; batches of 1..3
  // queries against 1..3 classes keep every shape strictly inside one
  // tile, where remainder handling is easiest to get wrong.
  util::Rng rng(43);
  const std::size_t dim = 129;  // ragged word tail too
  for (std::size_t classes = 1; classes <= 3; ++classes) {
    const hdc::BinaryClassifier classifier(random_hvs(classes, dim, rng));
    const hdc::BatchScorer scorer(classifier);
    for (std::size_t batch = 1; batch <= 3; ++batch) {
      const auto queries = random_hvs(batch, dim, rng);
      std::vector<int> out(batch, -1);
      scorer.predict_batch(queries, out);
      for (std::size_t i = 0; i < batch; ++i) {
        ASSERT_EQ(out[i], classifier.predict(queries[i]))
            << "classes=" << classes << " batch=" << batch << " i=" << i;
      }
    }
  }
}

TEST(BatchScorer, PredictionsIdenticalAcrossPoolSizes) {
  // Not just accuracy: the full prediction vector must be bit-identical
  // whether the batch is split across 1, 2, or hardware-many workers.
  util::Rng rng(47);
  const std::size_t dim = 503;
  const hdc::BinaryClassifier classifier(random_hvs(5, dim, rng));
  const auto queries = random_hvs(333, dim, rng);
  util::ThreadPool serial(1);
  std::vector<int> reference(queries.size(), -1);
  hdc::BatchScorer(classifier, &serial).predict_batch(queries, reference);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{0}}) {
    util::ThreadPool pool(workers);
    std::vector<int> out(queries.size(), -2);
    hdc::BatchScorer(classifier, &pool).predict_batch(queries, out);
    EXPECT_EQ(out, reference) << "workers=" << workers;
  }
}

TEST(BatchScorer, TieBreaksMatchPerSamplePredict) {
  // Tiny dimension forces frequent score ties; the batched argmax must
  // resolve them exactly like the per-sample scan (lowest class id wins).
  util::Rng rng(21);
  const std::size_t dim = 8;
  const hdc::BinaryClassifier classifier(random_hvs(6, dim, rng));
  const auto queries = random_hvs(500, dim, rng);
  const hdc::BatchScorer scorer(classifier);
  std::vector<int> out(queries.size());
  scorer.predict_batch(queries, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(out[i], classifier.predict(queries[i])) << "i=" << i;
  }
}

TEST(BatchScorer, ScoresBatchMatchesScores) {
  util::Rng rng(17);
  const std::size_t dim = 640;
  const hdc::BinaryClassifier classifier(random_hvs(9, dim, rng));
  const auto queries = random_hvs(33, dim, rng);
  const hdc::BatchScorer scorer(classifier);
  std::vector<std::int64_t> out(queries.size() * classifier.class_count());
  scorer.scores_batch(queries, out);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = classifier.scores(queries[q]);
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(out[q * expected.size() + k], expected[k]);
    }
  }
}

TEST(BatchScorer, EnsembleScoresBatchIsPerClassBest) {
  util::Rng rng(19);
  const std::size_t dim = 256;
  std::vector<std::vector<hv::BitVector>> models;
  for (std::size_t k = 0; k < 4; ++k) {
    models.push_back(random_hvs(3, dim, rng));
  }
  const hdc::EnsembleClassifier classifier(models);
  const auto queries = random_hvs(11, dim, rng);
  const hdc::BatchScorer scorer(classifier);
  std::vector<std::int64_t> out(queries.size() * classifier.class_count());
  scorer.scores_batch(queries, out);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t k = 0; k < models.size(); ++k) {
      std::int64_t best = hv::BitVector::dot(queries[q], models[k][0]);
      for (std::size_t m = 1; m < models[k].size(); ++m) {
        best = std::max(best, hv::BitVector::dot(queries[q], models[k][m]));
      }
      EXPECT_EQ(out[q * models.size() + k], best);
    }
  }
}

TEST(BatchScorer, CosineScoresBatchMatchesPerSampleCosine) {
  util::Rng rng(23);
  const std::size_t dim = 300;
  std::vector<hv::IntVector> classes;
  for (std::size_t k = 0; k < 5; ++k) {
    hv::IntVector accumulator(dim);
    accumulator.add(hv::BitVector::random(dim, rng));
    accumulator.add(hv::BitVector::random(dim, rng));
    classes.push_back(std::move(accumulator));
  }
  const hdc::NonBinaryClassifier classifier(classes);
  const auto queries = random_hvs(13, dim, rng);
  const hdc::BatchScorer scorer(classifier);
  std::vector<double> out(queries.size() * classes.size());
  scorer.cosine_scores_batch(queries, out);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t k = 0; k < classes.size(); ++k) {
      // Bit-identical, not approximately equal: same dot, same denominator.
      EXPECT_EQ(out[q * classes.size() + k],
                classes[k].cosine(queries[q]));
    }
  }
}

TEST(BatchScorer, AccuracyInvariantToWorkerCount) {
  util::Rng rng(29);
  const std::size_t dim = 503;
  const hdc::BinaryClassifier classifier(random_hvs(4, dim, rng));
  hdc::EncodedDataset dataset(dim, 4);
  for (std::size_t i = 0; i < 700; ++i) {
    dataset.add(hv::BitVector::random(dim, rng), static_cast<int>(i % 4));
  }
  util::ThreadPool serial(1);
  const double reference =
      hdc::BatchScorer(classifier, &serial).accuracy(dataset);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}, std::size_t{0}}) {
    util::ThreadPool pool(workers);
    EXPECT_EQ(hdc::BatchScorer(classifier, &pool).accuracy(dataset),
              reference)
        << "workers=" << workers;
  }
}

// ------------------------------------------------------- Model surface ---

TEST(ModelBatch, WrappersMatchPerSamplePredict) {
  util::Rng rng(31);
  const std::size_t dim = 257;
  const auto queries = random_hvs(50, dim, rng);

  std::vector<std::shared_ptr<const train::Model>> models;
  models.push_back(std::make_shared<train::BinaryModel>(
      hdc::BinaryClassifier(random_hvs(5, dim, rng))));
  std::vector<std::vector<hv::BitVector>> ensemble;
  for (std::size_t k = 0; k < 3; ++k) {
    ensemble.push_back(random_hvs(2, dim, rng));
  }
  models.push_back(std::make_shared<train::EnsembleModel>(
      hdc::EnsembleClassifier(std::move(ensemble))));
  std::vector<hv::IntVector> nonbinary;
  for (std::size_t k = 0; k < 4; ++k) {
    hv::IntVector accumulator(dim);
    accumulator.add(hv::BitVector::random(dim, rng));
    nonbinary.push_back(std::move(accumulator));
  }
  models.push_back(std::make_shared<train::NonBinaryModel>(
      hdc::NonBinaryClassifier(std::move(nonbinary))));

  for (const auto& model : models) {
    std::vector<int> batched(queries.size(), -1);
    model->predict_batch(queries, batched);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(batched[i], model->predict(queries[i]));
    }
  }
}

TEST(ModelBatch, DefaultPredictBatchLoopsOverPredict) {
  // A Model subclass that only implements predict still gets a working
  // batch API through the base default.
  class ParityModel final : public train::Model {
   public:
    [[nodiscard]] int predict(const hv::BitVector& query) const override {
      return static_cast<int>(query.count_negatives() % 2);
    }
    [[nodiscard]] std::size_t storage_bits() const noexcept override {
      return 0;
    }
  };
  util::Rng rng(37);
  const auto queries = random_hvs(9, 100, rng);
  const ParityModel model;
  std::vector<int> out(queries.size(), -1);
  model.predict_batch(queries, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(out[i], model.predict(queries[i]));
  }

  hdc::EncodedDataset dataset(100, 2);
  for (const auto& q : queries) {
    dataset.add(q, 0);
  }
  std::size_t zeros = 0;
  for (const auto& q : queries) {
    zeros += model.predict(q) == 0 ? 1 : 0;
  }
  EXPECT_DOUBLE_EQ(model.accuracy(dataset),
                   static_cast<double>(zeros) /
                       static_cast<double>(queries.size()));
}

// ---------------------------------------------------------- Pipeline ----

TEST(PipelineBatch, PredictBatchMatchesPerSamplePredict) {
  const auto split = data::generate_synthetic([] {
    data::SyntheticConfig config;
    config.feature_count = 12;
    config.class_count = 3;
    config.train_count = 120;
    config.test_count = 60;
    config.seed = 5;
    return config;
  }());
  core::PipelineConfig config;
  config.dim = 512;
  config.strategy = core::Strategy::kBaseline;
  core::Pipeline pipeline(config);
  pipeline.fit(split.train);

  const std::vector<int> batched = pipeline.predict_batch(split.test);
  ASSERT_EQ(batched.size(), split.test.size());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ASSERT_EQ(batched[i], pipeline.predict(split.test.sample(i)))
        << "i=" << i;
  }
}

TEST(PipelineBatch, EmptyAndSingleSampleBatches) {
  const auto split = data::generate_synthetic([] {
    data::SyntheticConfig config;
    config.feature_count = 9;
    config.class_count = 3;
    config.train_count = 90;
    config.test_count = 30;
    config.seed = 7;
    return config;
  }());
  core::PipelineConfig config;
  config.dim = 256;
  config.strategy = core::Strategy::kBaseline;
  core::Pipeline pipeline(config);
  pipeline.fit(split.train);

  const data::Dataset empty(split.test.feature_count(),
                            split.test.class_count());
  EXPECT_TRUE(pipeline.predict_batch(empty).empty());

  data::Dataset single(split.test.feature_count(), split.test.class_count());
  single.add_sample(split.test.sample(0), split.test.label(0));
  const std::vector<int> batched = pipeline.predict_batch(single);
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0], pipeline.predict(split.test.sample(0)));
}

TEST(PipelineBatch, EvaluateMatchesPerSampleAccuracy) {
  const auto split = data::generate_synthetic([] {
    data::SyntheticConfig config;
    config.feature_count = 10;
    config.class_count = 4;
    config.train_count = 100;
    config.test_count = 80;
    config.seed = 6;
    return config;
  }());
  core::PipelineConfig config;
  config.dim = 512;
  config.strategy = core::Strategy::kBaseline;
  core::Pipeline pipeline(config);
  pipeline.fit(split.train);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (pipeline.predict(split.test.sample(i)) == split.test.label(i)) {
      ++correct;
    }
  }
  EXPECT_DOUBLE_EQ(pipeline.evaluate(split.test).accuracy,
                   static_cast<double>(correct) /
                       static_cast<double>(split.test.size()));
}

TEST(PipelineBatch, EncodedSpanOverloadMatchesModel) {
  const auto split = data::generate_synthetic([] {
    data::SyntheticConfig config;
    config.feature_count = 8;
    config.class_count = 2;
    config.train_count = 60;
    config.test_count = 20;
    config.seed = 8;
    return config;
  }());
  core::PipelineConfig config;
  config.dim = 256;
  config.strategy = core::Strategy::kBaseline;
  core::Pipeline pipeline(config);
  pipeline.fit(split.train);

  const hdc::EncodedDataset encoded =
      hdc::encode_dataset(pipeline.encoder(), split.test);
  std::vector<int> out(encoded.size(), -1);
  pipeline.predict_batch(encoded.hypervectors(), out);
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    ASSERT_EQ(out[i], pipeline.model().predict(encoded.hypervector(i)));
  }
}

}  // namespace
}  // namespace lehdc
