// Runtime behavior of the annotated lock wrappers (util/mutex.hpp): the
// thread-safety attributes are compile-time only, so these tests pin the
// wrappers' actual semantics — mutual exclusion, condition-variable
// wakeups, shared/exclusive reader-writer behavior, try_lock — plus the
// macro no-op guarantee on non-clang compilers. The compile-time side is
// covered by the clang-gated `thread_safety_negative_compile` ctest over
// tests/negative/thread_safety_violation.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::util {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mutex;
  std::int64_t counter = 0;  // intentionally non-atomic
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mutex;
  mutex.lock();
  EXPECT_FALSE(mutex.try_lock());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexTest, CondVarWakesWaiterOnNotify) {
  Mutex mutex;
  CondVar ready;
  bool go = false;
  std::int64_t observed = -1;
  std::thread waiter([&] {
    UniqueLock lock(mutex);
    while (!go) {
      ready.wait(lock);
    }
    observed = 42;
  });
  {
    const MutexLock lock(mutex);
    go = true;
  }
  ready.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(MutexTest, CondVarWaitForTimesOut) {
  Mutex mutex;
  CondVar never;
  UniqueLock lock(mutex);
  const auto status = never.wait_for(lock, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(MutexTest, UniqueLockRelocks) {
  Mutex mutex;
  UniqueLock lock(mutex);
  lock.unlock();
  EXPECT_TRUE(mutex.try_lock());  // released for real
  mutex.unlock();
  lock.lock();
  EXPECT_FALSE(mutex.try_lock());  // held again
}

TEST(SharedMutexTest, ManyReadersOneWriter) {
  SharedMutex mutex;
  std::int64_t value = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> peak_readers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const SharedLock lock(mutex);
        const int now = concurrent_readers.fetch_add(1) + 1;
        int peak = peak_readers.load();
        while (now > peak && !peak_readers.compare_exchange_weak(peak, now)) {
        }
        (void)value;
        concurrent_readers.fetch_sub(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      mutex.lock();
      EXPECT_EQ(concurrent_readers.load(), 0);  // writers exclude readers
      ++value;
      mutex.unlock();
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(value, 50);
  EXPECT_GE(peak_readers.load(), 1);
}

TEST(AnnotationMacroTest, MacrosAreInertOffClang) {
#if !defined(__clang__)
  // On gcc every LEHDC_* macro must expand to nothing — this TU compiling
  // with the annotations above is itself the assertion; record it.
  SUCCEED() << "annotations compiled as no-ops";
#else
  SUCCEED() << "clang build: annotations active, enforced by "
               "-Werror=thread-safety";
#endif
}

}  // namespace
}  // namespace lehdc::util
