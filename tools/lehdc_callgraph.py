#!/usr/bin/env python3
"""Call-graph hot-path discipline checker (lehdc).

Builds the project call graph and proves that the enumerated hot-path
entry points never transitively reach an allocation, a mutex acquisition
(outside an explicit allowlist), a throw, or a blocking syscall. The hot
entries are the functions the serving stack runs per sample / per byte —
the paths DESIGN.md promises are allocation-free and lock-free:

    obs record path        Counter::add / Gauge::set / Histogram::observe
    encode kernel          BlockEncodeCursor::encode_words implementations
    score kernels          BatchScorer::predict_range / predict_fused
    admission              MicroBatcher::offer
    transport ingress      Connection::on_bytes
    feedback ingress       OnlineSidecar::offer_feedback

Two stages, deliberately separable:

  extraction   clang -Xclang -ast-dump=json over compile_commands.json
               -> "call facts": every function definition with its call
               edges and primitive effects (new/throw). Needs clang; when
               clang is absent the tool SKIPs (exit 0) exactly like
               scripts/tidy.sh. `--dump-facts` persists the result.
  analysis     facts -> BFS from each hot entry -> rule findings ->
               baseline diff. Pure Python, no clang: `--facts FILE` runs
               it on pre-extracted (or synthetic fixture) facts, which is
               how the self-tests exercise every rule on gcc-only boxes.

Findings diff against scripts/callgraph_baseline.txt with the same
ratchet semantics as scripts/tidy.sh: a (entry, rule, sink) triple absent
from the baseline or with a higher count fails; equal-or-lower passes.
While the baseline carries the `# status: bootstrap` marker the run
prints findings and exits 0, asking the first clang-equipped run (CI) to
commit a real baseline via --update-baseline.

Inline suppression: a source line (or the line directly above it) reading
`lehdc-callgraph: allow(<rule>)` — or `allow(*)` — inside a comment
exempts effects reported at that line.

Exit codes: 0 clean/bootstrap/skip-no-clang, 1 new findings, 2 usage or
extraction error.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from collections import defaultdict, deque
from pathlib import Path

FACTS_VERSION = 1

# Pseudo-callee names the extractor emits for primitive effects, so the
# analysis stage sees one uniform shape: a function is a list of calls.
PSEUDO_NEW = "operator new"
PSEUDO_THROW = "__throw__"

# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

ALLOC_CALLEES = {
    "operator new",
    "operator new[]",
    "malloc",
    "calloc",
    "realloc",
    "aligned_alloc",
    "posix_memalign",
    "strdup",
}

# Mutex acquisition: annotated wrappers (util/mutex.hpp), std lock types,
# and the raw primitives. Constructors are reported by the extractor as
# "<qualified type>::(ctor)".
LOCK_PATTERN = re.compile(
    r"("
    r"(^|::)(lock|try_lock|lock_shared|try_lock_shared)$"
    r"|pthread_mutex_(lock|trylock)$"
    r"|pthread_rwlock_(rd|wr|tryrd|trywr)lock$"
    r"|(MutexLock|UniqueLock|SharedLock|lock_guard|scoped_lock|unique_lock|"
    r"shared_lock)(<[^:]*>)?::\(ctor\)$"
    r")"
)

# Blocking calls: raw syscall wrappers plus the std waiting primitives.
BLOCK_PATTERN = re.compile(
    r"(^|::)("
    r"read|pread|write|pwrite|recv|recvfrom|recvmsg|send|sendto|sendmsg"
    r"|accept|accept4|connect|poll|ppoll|select|pselect|epoll_wait"
    r"|epoll_pwait|nanosleep|sleep|usleep|fsync|fdatasync|flock"
    r"|wait|wait_for|wait_until|sleep_for|sleep_until|join|get"
    r")$"
)
# `wait`/`get`/`join` only block on these receivers; a project function
# merely named `wait` would be caught by its own body, not its name.
BLOCK_RECEIVER_HINT = re.compile(
    r"(condition_variable|CondVar|future|promise|thread|latch|barrier|"
    r"semaphore)")

RULES = ("alloc", "lock", "throw", "block")


def classify_call(name: str) -> str | None:
    """The rule a direct call to `name` violates, or None."""
    if name in ALLOC_CALLEES or name == PSEUDO_NEW:
        return "alloc"
    if name == PSEUDO_THROW:
        return "throw"
    if LOCK_PATTERN.search(name):
        return "lock"
    match = BLOCK_PATTERN.search(name)
    if match:
        short = match.group(2)
        if short in ("wait", "wait_for", "wait_until", "join", "get",
                     "sleep_for", "sleep_until"):
            # Only flag when the receiver type is visibly a waiting
            # primitive; plain `get` / project-level `wait` methods are not
            # blocking by name alone.
            return "block" if BLOCK_RECEIVER_HINT.search(name) else None
        return "block"
    return None


# ---------------------------------------------------------------------------
# Hot entries
# ---------------------------------------------------------------------------

# Each entry: a regex matched (fullmatch) against qualified function names,
# the rules enforced for it, and entry-specific allowed callees (regexes;
# a matching callee is not descended into and raises no finding).
HOT_ENTRIES = [
    {
        "name": "obs-record",
        "pattern": r"lehdc::obs::(Counter::add|Gauge::set|Histogram::observe)",
        "rules": RULES,
        "allow": [],
    },
    {
        "name": "encode-kernel",
        # Every BlockEncodeCursor implementation (the fused encode kernel).
        "pattern": r"lehdc::hdc::.*Cursor.*::encode_words",
        "rules": RULES,
        "allow": [],
    },
    {
        "name": "score-kernel",
        "pattern": r"lehdc::hdc::BatchScorer::predict_range",
        "rules": RULES,
        "allow": [],
    },
    {
        "name": "score-fused",
        "pattern": r"lehdc::hdc::BatchScorer::predict_fused",
        "rules": ("throw", "block"),
        # The fused driver amortizes setup per *batch*: the chunking layer
        # (thread pool) and the per-chunk scratch acquisition lock and
        # allocate by design, which is why `alloc`/`lock` are not enforced
        # for the driver itself — predict_range above covers the per-query
        # inner loop.
        "allow": [
            r"lehdc::util::ThreadPool::.*",
            r"lehdc::util::parallel_for",
            r"lehdc::hdc::BatchScorer::(acquire|release)_scratch",
        ],
    },
    {
        "name": "admission",
        "pattern": r"lehdc::serve::MicroBatcher::offer",
        # offer() runs under the server mutex and may queue (allocate); the
        # discipline it must keep is: never block, never take another lock,
        # never throw past the typed Reject surface.
        "rules": ("lock", "throw", "block"),
        "allow": [],
    },
    {
        "name": "transport-ingress",
        "pattern": r"lehdc::serve::Connection::on_bytes",
        "rules": ("lock", "block"),
        # Submitting into the server legitimately takes the server mutex.
        "allow": [
            r"lehdc::serve::InferenceServer::submit",
            r"lehdc::serve::OnlineSidecar::offer_feedback",
        ],
    },
    {
        "name": "feedback-ingress",
        "pattern": r"lehdc::serve::OnlineSidecar::offer_feedback",
        "rules": ("alloc", "lock", "throw", "block"),
        # The documented O(1)-under-mutex design: its own correlation
        # mutex and the map/deque operations under it are the contract;
        # what must never happen is reaching the learner, a flip, or I/O.
        "allow": [
            r"lehdc::util::(Mutex::lock|MutexLock::\(ctor\))",
            r"std::.*",
        ],
    },
]

# Callees every entry may reach: assertion/registration helpers that are
# cold by construction (expects throws only on programming errors; metric
# registration runs once behind a function-local static).
GLOBAL_ALLOW = [
    r"lehdc::util::expects",
    r"lehdc::obs::Registry::(counter|gauge|histogram|global)",
    r"lehdc::obs::(enabled|Counter::add|Gauge::set|Histogram::observe)",
]

SUPPRESS_RE = re.compile(r"lehdc-callgraph:\s*allow\((\*|[a-z]+)\)")


# ---------------------------------------------------------------------------
# Extraction (needs clang)
# ---------------------------------------------------------------------------

FUNCTION_KINDS = {
    "FunctionDecl",
    "CXXMethodDecl",
    "CXXConstructorDecl",
    "CXXDestructorDecl",
    "CXXConversionDecl",
}
SCOPE_KINDS = {"NamespaceDecl", "CXXRecordDecl", "ClassTemplateDecl",
               "ClassTemplateSpecializationDecl"}


def find_clang() -> str | None:
    for candidate in ("clang++",) + tuple(
            f"clang++-{v}" for v in range(20, 13, -1)):
        if shutil.which(candidate):
            return candidate
    return None


def _loc_of(node: dict, state: dict) -> tuple[str | None, int | None]:
    """Resolve a node's (file, line), tracking clang's sticky locations."""
    loc = node.get("loc") or {}
    for candidate in (loc, loc.get("expansionLoc") or {},
                      loc.get("spellingLoc") or {}):
        if "file" in candidate:
            state["file"] = candidate["file"]
        if "line" in candidate:
            state["line"] = candidate["line"]
        if candidate:
            break
    return state.get("file"), state.get("line")


class TuExtractor:
    """Walks one TU's JSON AST into call facts."""

    def __init__(self, root: Path):
        self.root = root
        self.decl_names: dict[str, str] = {}  # node id -> qualified name
        self.functions: dict[str, dict] = {}

    def run(self, ast: dict) -> None:
        self._index_decls(ast, [])
        state = {"file": None, "line": None}
        self._walk(ast, [], None, state)

    def _qualify(self, scopes: list[str], name: str) -> str:
        return "::".join([s for s in scopes if s] + [name])

    def _index_decls(self, node: dict, scopes: list[str]) -> None:
        kind = node.get("kind", "")
        name = node.get("name", "")
        if kind in FUNCTION_KINDS and name:
            if kind == "CXXConstructorDecl":
                name = "(ctor)"
            node_id = node.get("id")
            if node_id:
                self.decl_names[node_id] = self._qualify(scopes, name)
        child_scopes = scopes
        if kind in SCOPE_KINDS:
            child_scopes = scopes + [name]
        elif kind in FUNCTION_KINDS:
            child_scopes = scopes + [name or "(anon)"]
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                self._index_decls(child, child_scopes)

    def _project_file(self, file: str | None) -> str | None:
        if not file:
            return None
        path = Path(file)
        if not path.is_absolute():
            path = (self.root / path).resolve()
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            return None
        return str(rel)

    def _walk(self, node: dict, scopes: list[str], current: dict | None,
              state: dict) -> None:
        kind = node.get("kind", "")
        file, line = _loc_of(node, state)

        if kind in FUNCTION_KINDS and node.get("inner"):
            has_body = any(isinstance(c, dict) and c.get("kind") ==
                           "CompoundStmt" for c in node["inner"])
            if has_body:
                name = node.get("name", "")
                if kind == "CXXConstructorDecl":
                    name = "(ctor)"
                qual = self._qualify(scopes, name or "(anon)")
                rel = self._project_file(file)
                if rel is not None:
                    current = self.functions.setdefault(
                        qual, {"name": qual, "file": rel, "line": line or 0,
                               "calls": []})
                else:
                    current = None  # system header definition: ignore

        if current is not None:
            callee = None
            if kind == "CXXNewExpr":
                callee = PSEUDO_NEW
            elif kind == "CXXThrowExpr":
                callee = PSEUDO_THROW
            elif kind in ("CallExpr", "CXXMemberCallExpr",
                          "CXXOperatorCallExpr"):
                callee = self._callee_name(node)
            elif kind == "CXXConstructExpr":
                qual_type = (node.get("type") or {}).get("qualType", "")
                base = re.sub(r"^const\s+|\s*&$", "", qual_type).strip()
                if base:
                    callee = f"{base}::(ctor)"
            if callee:
                current["calls"].append(
                    {"name": callee, "line": state.get("line") or 0,
                     "file": self._project_file(state.get("file"))})

        child_scopes = scopes
        name = node.get("name", "")
        if kind in SCOPE_KINDS:
            child_scopes = scopes + [name]
        elif kind in FUNCTION_KINDS:
            child_scopes = scopes + [(node.get("name") or "(anon)")
                                     if kind != "CXXConstructorDecl"
                                     else "(ctor)"]
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                self._walk(child, child_scopes, current, state)

    def _callee_name(self, node: dict) -> str | None:
        """Best-effort qualified callee of a call expression."""
        found: list[str] = []

        def scan(n: dict, depth: int) -> None:
            if found or depth > 6:
                return
            ref = n.get("referencedDecl")
            if isinstance(ref, dict) and ref.get("kind") in FUNCTION_KINDS:
                ref_id = ref.get("id")
                if ref_id and ref_id in self.decl_names:
                    found.append(self.decl_names[ref_id])
                elif ref.get("name"):
                    found.append(ref["name"])
                return
            member = n.get("referencedMemberDecl")
            if member and member in self.decl_names:
                found.append(self.decl_names[member])
                return
            if n.get("kind") == "MemberExpr" and n.get("name"):
                found.append(n["name"])
                return
            for child in n.get("inner", []) or []:
                if isinstance(child, dict):
                    scan(child, depth + 1)

        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                scan(child, 0)
            if found:
                break
        return found[0] if found else None


def load_compile_commands(build_dir: Path, root: Path) -> list[dict]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        subprocess.run(
            ["cmake", "-B", str(build_dir), "-S", str(root),
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
            check=True, capture_output=True)
    with open(db_path, encoding="utf-8") as fh:
        return json.load(fh)


def tu_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = entry["command"].split()
    # Drop the compiler, output options and the trailing source; keep
    # include paths, defines and standard flags.
    kept: list[str] = []
    skip = False
    for arg in args[1:]:
        if skip:
            skip = False
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if arg in ("-c", "-MD", "-MMD") or arg == entry["file"]:
            continue
        kept.append(arg)
    return kept


def extract_facts(clang: str, build_dir: Path, root: Path,
                  only: str | None) -> dict:
    entries = load_compile_commands(build_dir, root)
    extractor = TuExtractor(root)
    tus = 0
    for entry in entries:
        src = Path(entry["file"])
        try:
            rel = src.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        if not str(rel).startswith("src/"):
            continue
        if only and only not in str(rel):
            continue
        cmd = [clang, *tu_args(entry), "-fsyntax-only", "-Wno-everything",
               "-Xclang", "-ast-dump=json", str(src)]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              cwd=entry.get("directory", str(root)))
        if proc.returncode != 0 or not proc.stdout.strip():
            print(f"lehdc_callgraph: extraction failed for {rel}: "
                  f"{proc.stderr.strip().splitlines()[:1]}", file=sys.stderr)
            raise SystemExit(2)
        extractor.run(json.loads(proc.stdout))
        tus += 1
    print(f"lehdc_callgraph: extracted {len(extractor.functions)} functions "
          f"from {tus} TUs")
    return {"version": FACTS_VERSION,
            "functions": sorted(extractor.functions.values(),
                                key=lambda f: f["name"])}


# ---------------------------------------------------------------------------
# Analysis (clang-free)
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, entry: str, rule: str, sink: str, path: list[str],
                 file: str | None, line: int):
        self.entry = entry
        self.rule = rule
        self.sink = sink
        self.path = path
        self.file = file
        self.line = line

    def key(self) -> str:
        return f"{self.entry}\t{self.rule}\t{self.sink}"


def _suppressed(root: Path, file: str | None, line: int, rule: str,
                cache: dict) -> bool:
    if not file or line <= 0:
        return False
    if file not in cache:
        path = root / file
        try:
            cache[file] = path.read_text(encoding="utf-8",
                                         errors="replace").splitlines()
        except OSError:
            cache[file] = []
    lines = cache[file]
    for idx in (line - 1, line - 2):
        if 0 <= idx < len(lines):
            match = SUPPRESS_RE.search(lines[idx])
            if match and match.group(1) in ("*", rule):
                return True
    return False


def analyze(facts: dict, root: Path) -> list[Finding]:
    functions = {f["name"]: f for f in facts.get("functions", [])}
    global_allow = [re.compile(p) for p in GLOBAL_ALLOW]
    findings: list[Finding] = []
    suppress_cache: dict = {}

    for spec in HOT_ENTRIES:
        pattern = re.compile(spec["pattern"])
        allow = global_allow + [re.compile(p) for p in spec["allow"]]
        rules = set(spec["rules"])
        entries = [name for name in functions if pattern.fullmatch(name)]
        for entry_name in sorted(entries):
            seen = {entry_name}
            queue = deque([(entry_name, [entry_name])])
            while queue:
                current, path = queue.popleft()
                for call in functions[current]["calls"]:
                    callee = call["name"]
                    if any(p.fullmatch(callee) for p in allow):
                        continue
                    rule = classify_call(callee)
                    if rule is not None and rule in rules:
                        file = call.get("file") or functions[current]["file"]
                        line = call.get("line") or 0
                        if _suppressed(root, file, line, rule,
                                       suppress_cache):
                            continue
                        findings.append(Finding(
                            entry_name, rule, f"{current} -> {callee}",
                            path + [callee], file, line))
                        continue
                    if callee in functions and callee not in seen:
                        seen.add(callee)
                        queue.append((callee, path + [callee]))
    findings.sort(key=lambda f: (f.entry, f.rule, f.sink))
    return findings


def normalize(findings: list[Finding]) -> list[str]:
    counts: dict[str, int] = defaultdict(int)
    for finding in findings:
        counts[finding.key()] += 1
    return [f"{key}\t{count}" for key, count in sorted(counts.items())]


def parse_baseline(path: Path) -> tuple[dict[str, int], bool]:
    allowed: dict[str, int] = {}
    bootstrap = False
    if not path.exists():
        return allowed, bootstrap
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.startswith("# status: bootstrap"):
            bootstrap = True
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) == 4:
            allowed["\t".join(parts[:3])] = int(parts[3])
    return allowed, bootstrap


def write_report(path: Path, findings: list[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# lehdc_callgraph report — {len(findings)} finding(s)\n")
        for finding in findings:
            loc = f"{finding.file}:{finding.line}" if finding.file else "?"
            fh.write(f"{finding.entry}\t{finding.rule}\t{loc}\n")
            fh.write("    " + " -> ".join(finding.path) + "\n")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="hot-path call-graph discipline checker")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--facts", help="pre-extracted facts JSON "
                        "(skips clang extraction)")
    parser.add_argument("--dump-facts", help="write extracted facts here")
    parser.add_argument("--baseline",
                        default="scripts/callgraph_baseline.txt")
    parser.add_argument("--report", default="callgraph_report.txt")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--only", help="restrict extraction to TUs whose "
                        "path contains this substring")
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent

    if args.facts:
        with open(args.facts, encoding="utf-8") as fh:
            facts = json.load(fh)
        if facts.get("version") != FACTS_VERSION:
            print(f"lehdc_callgraph: facts version "
                  f"{facts.get('version')} != {FACTS_VERSION}",
                  file=sys.stderr)
            return 2
    else:
        clang = find_clang()
        if clang is None:
            print("lehdc_callgraph: clang++ not found — SKIPPED "
                  "(install clang to run this gate, or pass --facts)")
            return 0
        facts = extract_facts(clang, Path(args.build_dir), root, args.only)

    if args.dump_facts:
        with open(args.dump_facts, "w", encoding="utf-8") as fh:
            json.dump(facts, fh, indent=1, sort_keys=True)

    findings = analyze(facts, root)
    current = normalize(findings)
    write_report(Path(args.report), findings)

    baseline_path = root / args.baseline if not Path(
        args.baseline).is_absolute() else Path(args.baseline)

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as fh:
            fh.write("# lehdc_callgraph baseline — regenerate with "
                     "tools/lehdc_callgraph.py --update-baseline\n")
            fh.write("# format: entry<TAB>rule<TAB>sink<TAB>count; new "
                     "triples or higher counts fail the gate\n")
            for line in current:
                fh.write(line + "\n")
        print(f"lehdc_callgraph: baseline updated ({len(current)} entries) "
              f"-> {baseline_path}")
        return 0

    allowed, bootstrap = parse_baseline(baseline_path)

    if bootstrap:
        print(f"lehdc_callgraph: baseline is in bootstrap state; current "
              f"findings ({len(current)}):")
        for line in current:
            print("  " + line)
        print("lehdc_callgraph: BOOTSTRAP PASS — commit a real baseline "
              "with: tools/lehdc_callgraph.py --update-baseline")
        return 0

    new = []
    for line in current:
        key, _, count = line.rpartition("\t")
        if int(count) > allowed.get(key, 0):
            new.append(f"{key}\t{count} (baseline {allowed.get(key, 0)})")
    if new:
        print(f"lehdc_callgraph: NEW hot-path violations versus "
              f"{baseline_path}:", file=sys.stderr)
        for line in new:
            print("  " + line, file=sys.stderr)
        print("lehdc_callgraph: fix them, add a `lehdc-callgraph: "
              "allow(rule)` comment at the effect site, or (deliberately) "
              "re-baseline with --update-baseline", file=sys.stderr)
        return 1

    improved = sum(1 for key, count in allowed.items()
                   if count > dict(
                       (l.rpartition("\t")[0], int(l.rpartition("\t")[2]))
                       for l in current).get(key, 0))
    print(f"lehdc_callgraph: OK — no new findings "
          f"({len(current)} current entries)")
    if improved:
        print(f"lehdc_callgraph: {improved} baseline entr(ies) improved; "
              "tighten with --update-baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
