#!/usr/bin/env python3
"""Self-tests for tools/lehdc_callgraph.py (clang-free).

Runs the checker's analysis stage on the synthetic facts in
tests/callgraph/fixture_facts.json and asserts the full contract:

  * a hot entry reaching a forbidden effect (directly or transitively)
    is reported under the right rule;
  * entry-specific and global allowlists prune both the finding and the
    descent;
  * an inline `lehdc-callgraph: allow(rule)` comment suppresses the
    effect at that line;
  * the baseline diff is stable (two runs, identical reports), a
    bootstrap baseline passes loudly, an armed empty baseline fails,
    --update-baseline then passes, and a NEW violation on an armed
    baseline fails again.

Registered as the ctest `callgraph_selftest`. Exit 0 on success.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TOOL = ROOT / "tools" / "lehdc_callgraph.py"
FACTS = ROOT / "tests" / "callgraph" / "fixture_facts.json"

failures = []


def check(name: str, condition: bool, detail: str = "") -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {name}" + (f" — {detail}" if not condition else ""))
    if not condition:
        failures.append(name)


def run(*extra: str, facts: Path = FACTS) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(TOOL), "--facts", str(facts), *extra],
        capture_output=True, text=True, cwd=ROOT)


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="lehdc_callgraph_test_"))
    report = tmp / "report.txt"
    baseline = tmp / "baseline.txt"

    print("== findings & suppressions ==")
    baseline.write_text("# armed (no bootstrap marker)\n")
    proc = run("--baseline", str(baseline), "--report", str(report))
    body = report.read_text()
    check("armed empty baseline fails", proc.returncode == 1,
          f"rc={proc.returncode} stderr={proc.stderr!r}")
    check("alloc violation found",
          "lehdc::obs::Counter::add\talloc" in body, body)
    check("transitive lock violation found",
          "lehdc::serve::MicroBatcher::offer\tlock" in body
          and "grow_queue -> lehdc::util::Mutex::lock" in body, body)
    check("inline allow(throw) suppresses predict_fused throw",
          "predict_fused" not in body, body)
    check("global allowlist (util::expects) raises nothing",
          "expects" not in body, body)
    check("per-entry allowlist (offer_feedback own mutex) raises nothing",
          "offer_feedback" not in body, body)

    print("== determinism ==")
    report2 = tmp / "report2.txt"
    run("--baseline", str(baseline), "--report", str(report2))
    check("two runs produce identical reports",
          body == report2.read_text())

    print("== baseline lifecycle ==")
    boot = tmp / "bootstrap.txt"
    boot.write_text("# status: bootstrap\n")
    proc = run("--baseline", str(boot), "--report", str(report))
    check("bootstrap baseline passes", proc.returncode == 0,
          f"rc={proc.returncode}")
    check("bootstrap run announces itself", "BOOTSTRAP" in proc.stdout,
          proc.stdout)

    proc = run("--baseline", str(baseline), "--report", str(report),
               "--update-baseline")
    check("--update-baseline exits 0", proc.returncode == 0)
    lines = [l for l in baseline.read_text().splitlines()
             if l and not l.startswith("#")]
    check("baseline records both triples", len(lines) == 2,
          repr(lines))
    proc = run("--baseline", str(baseline), "--report", str(report))
    check("armed baseline accepts identical findings",
          proc.returncode == 0, f"rc={proc.returncode}")

    # A new violation on top of the armed baseline must fail again.
    facts = json.loads(FACTS.read_text())
    for fn in facts["functions"]:
        if fn["name"] == "lehdc::serve::MicroBatcher::offer":
            fn["calls"].append({"name": "nanosleep", "line": 1,
                                "file": "tests/callgraph/fixture.cpp"})
    grown = tmp / "grown_facts.json"
    grown.write_text(json.dumps(facts))
    proc = run("--baseline", str(baseline), "--report", str(report),
               facts=grown)
    check("new violation on armed baseline fails", proc.returncode == 1,
          f"rc={proc.returncode}")
    check("failure names the new triple",
          "MicroBatcher::offer\tblock" in proc.stderr, proc.stderr)

    print("== repo baseline sanity ==")
    repo_baseline = (ROOT / "scripts" / "callgraph_baseline.txt").read_text()
    check("committed baseline parses",
          repo_baseline.startswith("# lehdc_callgraph baseline"))

    if failures:
        print(f"\n{len(failures)} check(s) FAILED: {failures}")
        return 1
    print("\nall callgraph self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
