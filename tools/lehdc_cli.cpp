// lehdc_cli — train, evaluate and deploy HDC classifiers from the command
// line, no C++ required.
//
//   lehdc_cli train    --data <spec> --strategy lehdc --model out.lhdp ...
//   lehdc_cli evaluate --data <spec> --model out.lhdp
//   lehdc_cli predict  --model out.lhdp --features "0.1,0.9,..."
//   lehdc_cli predict  --model out.lhdp --data csv:file.csv   (batched)
//   lehdc_cli info     --model out.lhdp
//
// Worker threads: --threads N > the LEHDC_THREADS environment variable >
// all hardware threads.
//
// Data specs:
//   csv:<path>             numeric CSV, label in the last column
//   idx:<images>:<labels>  MNIST-format IDX pair
//   synth:<profile>        built-in synthetic benchmark profile
//                          (mnist, fashion-mnist, cifar-10, ucihar,
//                           isolet, pamap), scaled by --scale
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/pipeline_io.hpp"
#include "data/spec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lehdc;

/// Destination for human-readable summary lines. Normally stdout; switched
/// to stderr when `--metrics-out -` claims stdout for the JSON document,
/// so stdout stays machine-parseable.
std::FILE* g_text = stdout;

/// Parses a data spec into a train/test pair; see data/spec.hpp for the
/// spec grammar and the shuffle/holdout semantics.
data::TrainTestSplit load_data(const std::string& spec, double scale,
                               double holdout, std::uint64_t seed,
                               bool shuffle = true) {
  return data::load_spec(spec, scale, holdout, seed, shuffle);
}

std::vector<float> parse_features(const std::string& text) {
  std::vector<float> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token = text.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!token.empty()) {
      out.push_back(std::stof(token));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

int cmd_train(util::FlagParser& flags) {
  const auto split =
      load_data(flags.get_string("data"), flags.get_double("scale"),
                flags.get_double("holdout"),
                static_cast<std::uint64_t>(flags.get_int("seed")));
  std::fprintf(g_text, "train %s\ntest  %s\n", split.train.summary().c_str(),
               split.test.summary().c_str());

  core::PipelineConfig config;
  config.dim = static_cast<std::size_t>(flags.get_int("dim"));
  config.levels = static_cast<std::size_t>(flags.get_int("levels"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.strategy = core::strategy_from_name(flags.get_string("strategy"));
  config.checkpoint_every =
      static_cast<std::size_t>(flags.get_int("checkpoint-every"));
  config.checkpoint_path = flags.get_string("checkpoint");
  config.resume_path = flags.get_string("resume");
  if (config.checkpoint_every > 0 && config.checkpoint_path.empty()) {
    // `--checkpoint-every N` without an explicit path checkpoints next to
    // the model output (or to a default name for model-less runs).
    const auto& model = flags.get_string("model");
    config.checkpoint_path = model.empty() ? "train.lhck" : model + ".lhck";
  }
  config.lehdc.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  config.retrain.iterations =
      static_cast<std::size_t>(flags.get_int("epochs"));
  config.adapt.iterations =
      static_cast<std::size_t>(flags.get_int("epochs"));

  core::Pipeline pipeline(config);
  const core::FitReport report =
      pipeline.fit(split.train, split.test.empty() ? nullptr : &split.test);
  std::fprintf(g_text,
               "%s: train %.2f%%  test %.2f%%  (encode %.2fs, train %.2fs, "
               "%zu epochs)\n",
               core::strategy_name(config.strategy).c_str(),
               report.train_accuracy * 100.0, report.test_accuracy * 100.0,
               report.timings.encode_seconds, report.timings.train_seconds,
               report.epochs_run);

  if (const auto& model = flags.get_string("model"); !model.empty()) {
    if (pipeline.model().as_binary() == nullptr) {
      std::fprintf(stderr,
                   "note: %s models are not bundle-serializable; skipping "
                   "--model\n",
                   core::strategy_name(config.strategy).c_str());
    } else {
      core::save_pipeline(pipeline, model);
      std::fprintf(g_text, "pipeline bundle written to %s\n", model.c_str());
    }
  }
  return 0;
}

int cmd_evaluate(util::FlagParser& flags) {
  core::Pipeline pipeline = core::load_pipeline(flags.get_string("model"));
  const auto split =
      load_data(flags.get_string("data"), flags.get_double("scale"), 0.0,
                static_cast<std::uint64_t>(flags.get_int("seed")));
  const core::EvalResult result = pipeline.evaluate(split.train);
  std::fprintf(g_text,
               "accuracy over %zu samples: %.2f%%  (encode %.3fs, "
               "score %.3fs)\n",
               result.samples, result.accuracy * 100.0,
               result.encode_seconds, result.score_seconds);
  return 0;
}

int cmd_predict(util::FlagParser& flags) {
  core::Pipeline pipeline = core::load_pipeline(flags.get_string("model"));

  // Single query: --features "0.1,0.9,...".
  if (const auto& features_text = flags.get_string("features");
      !features_text.empty()) {
    const auto features = parse_features(features_text);
    std::fprintf(g_text, "%d\n", pipeline.predict(features));
    return 0;
  }

  // Batch mode: classify every sample of --data in one batched pass,
  // emitting one label per line in input order (no shuffle, no holdout).
  const auto split =
      load_data(flags.get_string("data"), flags.get_double("scale"), 0.0,
                static_cast<std::uint64_t>(flags.get_int("seed")),
                /*shuffle=*/false);
  const data::Dataset& dataset = split.train;
  const util::Stopwatch timer;
  const std::vector<int> labels = pipeline.predict_batch(dataset);
  const double seconds = timer.elapsed_seconds();
  for (const int label : labels) {
    std::fprintf(g_text, "%d\n", label);
  }
  std::fprintf(stderr, "classified %zu samples in %.3fs (%.0f queries/sec)\n",
               labels.size(), seconds,
               seconds > 0.0 ? static_cast<double>(labels.size()) / seconds
                             : 0.0);
  return 0;
}

int cmd_info(util::FlagParser& flags) {
  const core::Pipeline pipeline =
      core::load_pipeline(flags.get_string("model"));
  const auto* binary = pipeline.model().as_binary();
  const auto& encoder =
      dynamic_cast<const hdc::RecordEncoder&>(pipeline.encoder());
  std::fprintf(g_text, "strategy:  %s\n",
               core::strategy_name(pipeline.config().strategy).c_str());
  std::fprintf(g_text, "dimension: %zu\n", binary->dim());
  std::fprintf(g_text, "classes:   %zu\n", binary->class_count());
  std::fprintf(g_text, "features:  %zu\n", encoder.feature_count());
  std::fprintf(g_text, "levels:    %zu (value range [%g, %g])\n",
               encoder.levels().levels(), encoder.levels().range_lo(),
               encoder.levels().range_hi());
  std::fprintf(g_text, "model:     %.1f KiB packed\n",
               static_cast<double>(binary->class_count() * binary->dim()) /
                   8192.0);
  return 0;
}

void print_usage() {
  std::puts(
      "usage: lehdc_cli <train|evaluate|predict|info> [flags]\n"
      "  train    --data <spec> [--strategy lehdc] [--dim 10000]\n"
      "           [--epochs 100] [--model out.lhdp] [--holdout 0.2]\n"
      "           [--checkpoint-every N] [--resume ckpt.lhck]\n"
      "  evaluate --model out.lhdp --data <spec>\n"
      "  predict  --model out.lhdp --features \"0.1,0.9,...\"\n"
      "  predict  --model out.lhdp --data <spec>   (batched, one label/line)\n"
      "  info     --model out.lhdp\n"
      "data specs: csv:<path> | idx:<images>:<labels> | synth:<profile>\n"
      "threads: --threads N > LEHDC_THREADS env var > hardware\n"
      "telemetry: --metrics-out <path|-> --trace-out <path>, or set\n"
      "           LEHDC_METRICS=1 (collect) / LEHDC_METRICS=<path> (write)\n"
      "run `lehdc_cli <command> --help` for the full flag list");
}

int run_command(const std::string& command, util::FlagParser& flags) {
  if (command == "train") {
    return cmd_train(flags);
  }
  if (command == "evaluate") {
    return cmd_evaluate(flags);
  }
  if (command == "predict") {
    return cmd_predict(flags);
  }
  if (command == "info") {
    return cmd_info(flags);
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  print_usage();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];

  util::FlagParser flags("lehdc_cli " + command,
                         "HDC training and deployment CLI");
  flags.add_string("data", "synth:mnist", "data spec (see --help)");
  flags.add_string("model", "", "pipeline bundle path");
  flags.add_string("strategy", "lehdc",
                   "baseline|retraining|enhanced|adapthd|multimodel|"
                   "nonbinary|lehdc");
  flags.add_string("features", "", "comma-separated feature vector");
  flags.add_int("checkpoint-every", 0,
                "write a crash-safe training checkpoint every N epochs "
                "(0 disables; LeHDC only)");
  flags.add_string("checkpoint", "",
                   "checkpoint path (default: <model>.lhck)");
  flags.add_string("resume", "",
                   "resume a killed LeHDC run from this checkpoint");
  flags.add_int("threads", 0,
                "worker threads (0 = LEHDC_THREADS env var, then all "
                "hardware threads)");
  flags.add_string("metrics-out", "",
                   "write a metrics JSON snapshot here on exit ('-' streams "
                   "to stdout; summary lines then move to stderr)");
  flags.add_string("trace-out", "",
                   "write a Chrome trace_event JSON here on exit "
                   "(load via chrome://tracing or Perfetto)");
  flags.add_int("dim", 10000, "hypervector dimension D");
  flags.add_int("levels", 32, "value quantization levels");
  flags.add_int("epochs", 100, "training epochs / iterations");
  flags.add_int("seed", 1, "master seed");
  flags.add_double("scale", 0.05, "synthetic profile sample scale");
  flags.add_double("holdout", 0.2, "test fraction for csv/idx sources");

  try {
    flags.parse(argc - 1, argv + 1);
    // Must run before anything touches the global pool. --threads beats the
    // LEHDC_THREADS environment variable, which beats hardware sizing.
    if (const auto threads = flags.get_int("threads"); threads > 0) {
      util::ThreadPool::configure_global(static_cast<std::size_t>(threads));
    }

    // Telemetry: the flags beat LEHDC_METRICS, which can still enable
    // collection (and request a snapshot path) without touching the
    // command line.
    std::string metrics_path = flags.get_string("metrics-out");
    const std::string trace_path = flags.get_string("trace-out");
    if (const std::string env_path = obs::init_from_env();
        metrics_path.empty()) {
      metrics_path = env_path;
    }
    if (!metrics_path.empty() || !trace_path.empty()) {
      obs::set_enabled(true);
    }
    if (!trace_path.empty()) {
      obs::set_trace_enabled(true);
    }
    if (metrics_path == "-") {
      g_text = stderr;  // keep stdout pure JSON
    }

    const int status = run_command(command, flags);

    if (!metrics_path.empty()) {
      obs::Json context = obs::Json::object();
      context.set("tool", "lehdc_cli");
      context.set("command", command);
      context.set("data", flags.get_string("data"));
      context.set("strategy", flags.get_string("strategy"));
      obs::write_metrics_json(metrics_path, obs::Registry::global(),
                              std::move(context));
    }
    if (!trace_path.empty()) {
      obs::write_trace_json(trace_path);
    }
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
