// lehdc_serve — micro-batching inference server over pipeline bundles.
//
//   lehdc_serve serve     --model out.lhdp --uds /tmp/lehdc.sock
//   lehdc_serve serve     --model out.lhdp --tcp 127.0.0.1:7700
//   lehdc_serve pipe      --model out.lhdp --in requests.bin --out responses.bin
//   lehdc_serve genframes --data <spec> --count 64 --out requests.bin
//   lehdc_serve decode    --in responses.bin [--expect-ok 64]
//   lehdc_serve client    --socket /tmp/lehdc.sock --data <spec> --count 16
//
// `serve` runs a single-threaded epoll event loop (serve/transport/) over
// any mix of AF_UNIX (--uds, with --socket as the legacy alias) and TCP
// (--tcp HOST:PORT) listeners, speaking the length-prefixed binary
// protocol of serve/protocol.hpp with per-connection backpressure
// (--read-budget / --write-backlog / --max-inflight / --idle-timeout-us);
// SIGHUP hot-reloads the model bundles from their original paths without
// dropping traffic. `pipe` speaks the same protocol over files/stdio for
// scripted testing (CI drives it with frames built by `genframes` and
// checks the output with `decode`). Requests queue into a bounded
// micro-batcher (--max-batch / --max-wait-us / --queue-capacity);
// overload sheds with typed rejections instead of growing memory.
//
// Multi-tenant serving: --models "acme=a.lhdp,globex=b.lhdp" binds one
// model per tenant (the first listed becomes the default tenant);
// genframes/client stamp frames with --tenant and --wire-version, and
// responses echo each request's protocol generation. genframes --corrupt N
// appends N malformed frames (bad magic, truncation, oversized length,
// lying feature counts, bad tenant lengths, mid-header cuts, interleaved
// garbage) for decode-hardening tests.
//
// Online learning: --online attaches the feedback sidecar (shadow
// learner + blue-green flips, serve/online.hpp) to every tenant;
// --flip-every K sets the flip cadence in shadow updates. Clients return
// ground truth as LSF2 feedback frames: genframes/client emit one after
// every --feedback-every-th request, and each feedback is acknowledged
// with a typed response (kNone accepted, unknown_correlation otherwise)
// that never overtakes earlier in-flight responses.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "data/spec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/online.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport/event_loop.hpp"
#include "serve/transport/socket.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lehdc;

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void handle_signal(int signum) {
  if (signum == SIGHUP) {
    g_reload = 1;
  } else {
    g_stop = 1;
  }
}

serve::BatcherConfig batcher_config(const util::FlagParser& flags) {
  serve::BatcherConfig config;
  config.max_batch = static_cast<std::size_t>(flags.get_int("max-batch"));
  config.max_wait_us =
      static_cast<std::uint64_t>(flags.get_int("max-wait-us"));
  config.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-capacity"));
  config.tenant_capacity =
      static_cast<std::size_t>(flags.get_int("tenant-capacity"));
  return config;
}

/// Binds the served models: every `tenant=path` pair from --models, or the
/// single --model bundle as "default". Returns the default tenant id (the
/// first listed); `tenants` (when non-null) collects every bound id.
std::string load_models(serve::ModelRegistry& registry,
                        const util::FlagParser& flags,
                        std::vector<std::string>* tenants = nullptr) {
  const std::string& spec = flags.get_string("models");
  if (spec.empty()) {
    registry.load("default", flags.get_string("model"));
    if (tenants != nullptr) {
      tenants->push_back("default");
    }
    return "default";
  }
  std::string default_tenant;
  std::stringstream stream(spec);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      throw std::runtime_error("--models expects tenant=path pairs, got '" +
                               pair + "'");
    }
    const std::string tenant = pair.substr(0, eq);
    registry.load(tenant, pair.substr(eq + 1));
    if (tenants != nullptr) {
      tenants->push_back(tenant);
    }
    if (default_tenant.empty()) {
      default_tenant = tenant;
    }
  }
  if (default_tenant.empty()) {
    throw std::runtime_error("--models was empty after parsing");
  }
  return default_tenant;
}

/// --online: builds the feedback sidecar and enables it for every bound
/// tenant. Returns null when --online was not given. Pipe mode passes
/// manual=true: the scripted replay pumps the learner at deterministic
/// stream positions instead of racing a worker thread against the
/// batcher, so two runs over the same frame file are byte-identical.
std::unique_ptr<serve::OnlineSidecar> make_sidecar(
    serve::ModelRegistry& registry, serve::InferenceServer& server,
    const util::FlagParser& flags,
    const std::vector<std::string>& tenants, bool manual) {
  if (!flags.get_flag("online")) {
    return nullptr;
  }
  serve::OnlineSidecarConfig config;
  config.flip_every_updates =
      static_cast<std::size_t>(flags.get_int("flip-every"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.manual = manual;
  auto sidecar =
      std::make_unique<serve::OnlineSidecar>(registry, config,
                                             &server.clock());
  for (const std::string& tenant : tenants) {
    sidecar->enable(tenant);
  }
  server.attach_online(sidecar.get());
  return sidecar;
}

/// --shadow-dir: path of a tenant's persisted shadow accumulators
/// (checksummed LHON file, core/online.hpp).
std::string shadow_path(const std::string& dir, const std::string& tenant) {
  return (std::filesystem::path(dir) / (tenant + ".lhon")).string();
}

/// Restores every enabled tenant's shadow accumulators from --shadow-dir
/// at startup. A missing file is a cold start, not an error; a corrupt or
/// shape-mismatched file is refused by restore_shadow's checksum/shape
/// validation and logged, keeping the fresh learner.
void restore_shadows(serve::OnlineSidecar* sidecar,
                     const util::FlagParser& flags,
                     const std::vector<std::string>& tenants) {
  const std::string& dir = flags.get_string("shadow-dir");
  if (sidecar == nullptr || dir.empty()) {
    return;
  }
  for (const std::string& tenant : tenants) {
    const std::string path = shadow_path(dir, tenant);
    if (!std::filesystem::exists(path)) {
      continue;
    }
    try {
      sidecar->restore_shadow(tenant, path);
      util::log_info("restored shadow learner for '" + tenant + "' from " +
                     path);
    } catch (const std::exception& error) {
      util::log_warn("shadow restore for '" + tenant + "' failed (" +
                     error.what() + "); starting cold");
    }
  }
}

/// Saves every enabled tenant's shadow accumulators to --shadow-dir at
/// shutdown (serve mode: on SIGINT/SIGTERM; pipe mode: after the stream
/// drains). Failures are logged, never fatal — shutdown must complete.
void save_shadows(serve::OnlineSidecar* sidecar,
                  const util::FlagParser& flags,
                  const std::vector<std::string>& tenants) {
  const std::string& dir = flags.get_string("shadow-dir");
  if (sidecar == nullptr || dir.empty()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  for (const std::string& tenant : tenants) {
    const std::string path = shadow_path(dir, tenant);
    try {
      sidecar->save_shadow(tenant, path);
      util::log_info("saved shadow learner for '" + tenant + "' to " + path);
    } catch (const std::exception& error) {
      util::log_warn("shadow save for '" + tenant + "' failed: " +
                     error.what());
    }
  }
}

/// Submits one wire request (translating the relative deadline budget into
/// an absolute clock deadline) and returns its future.
std::future<serve::Response> submit_wire(serve::InferenceServer& server,
                                         serve::WireRequest request) {
  const std::uint64_t deadline =
      request.deadline_budget_us == 0
          ? 0
          : server.clock().now_us() + request.deadline_budget_us;
  return server.submit(std::move(request.features), deadline, request.tenant,
                       request.id);
}

void write_metrics(const util::FlagParser& flags, const std::string& mode) {
  const std::string& path = flags.get_string("metrics-out");
  if (path.empty()) {
    return;
  }
  obs::Json context = obs::Json::object();
  context.set("tool", "lehdc_serve");
  context.set("mode", mode);
  context.set("model", flags.get_string("model"));
  obs::write_metrics_json(path, obs::Registry::global(), std::move(context));
}

// ------------------------------------------------------------- pipe mode --

/// A pipe-stream entry: a submitted request awaiting its response, or a
/// feedback frame whose ack is resolved at drain time — after every
/// earlier request's response has been collected, so the served
/// prediction it references has been recorded by then (the same
/// ack-after-earlier-responses order the transport Connection keeps).
struct PipeEntry {
  bool is_feedback = false;
  std::future<serve::Response> future;
  int version = 2;
  serve::WireFeedback feedback;
};

int cmd_pipe(util::FlagParser& flags) {
  serve::ModelRegistry registry;
  serve::ServerConfig config;
  std::vector<std::string> tenant_ids;
  config.default_tenant = load_models(registry, flags, &tenant_ids);
  config.batcher = batcher_config(flags);
  serve::InferenceServer server(registry, config);
  const std::unique_ptr<serve::OnlineSidecar> sidecar =
      make_sidecar(registry, server, flags, tenant_ids, /*manual=*/true);
  restore_shadows(sidecar.get(), flags, tenant_ids);

  const std::string& in_path = flags.get_string("in");
  const std::string& out_path = flags.get_string("out");
  std::ifstream in_file;
  std::ofstream out_file;
  std::istream* in = &std::cin;
  std::ostream* out = &std::cout;
  if (in_path != "-") {
    in_file.open(in_path, std::ios::binary);
    if (!in_file) {
      throw std::runtime_error("cannot open " + in_path);
    }
    in = &in_file;
  }
  if (out_path != "-") {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      throw std::runtime_error("cannot open " + out_path);
    }
    out = &out_file;
  }

  // Submit up to `window` requests before awaiting any response: the read
  // side runs ahead of the scorer, so the micro-batcher sees real queue
  // depth and forms real batches even from a sequential file.
  const auto window = static_cast<std::size_t>(flags.get_int("window"));
  std::size_t served = 0;
  bool eof = false;
  // A corrupt frame (bad magic, truncation, lying lengths) is a typed
  // decode error, never a crash: every request admitted before it still
  // gets its response written, then the stream is abandoned — there is no
  // way to re-synchronize a length-prefixed stream past a corrupt header.
  std::string decode_error;
  while (!eof) {
    std::vector<PipeEntry> inflight;
    serve::ClientFrame frame;
    try {
      while (inflight.size() < window &&
             serve::read_client_frame(*in, &frame, in_path)) {
        PipeEntry entry;
        if (frame.is_feedback()) {
          entry.is_feedback = true;
          entry.feedback = std::move(frame.feedback);
        } else {
          entry.version = frame.request.version;
          entry.future = submit_wire(server, std::move(frame.request));
        }
        inflight.push_back(std::move(entry));
      }
    } catch (const std::exception& error) {
      decode_error = error.what();
    }
    eof = inflight.size() < window || !decode_error.empty();
    for (PipeEntry& entry : inflight) {
      if (entry.is_feedback) {
        serve::Response ack;
        ack.id = entry.feedback.id;
        ack.label = -1;
        ack.tenant = entry.feedback.tenant.empty()
                         ? config.default_tenant
                         : entry.feedback.tenant;
        ack.error = sidecar == nullptr
                        ? serve::Reject::kUnknownCorrelation
                        : sidecar->offer_feedback(ack.tenant,
                                                  entry.feedback.id,
                                                  entry.feedback.label);
        serve::write_response(*out, ack, 2);
        ++served;
        continue;
      }
      // Echo each response at its request's protocol generation: a v1
      // client never sees v2 bytes.
      serve::write_response(*out, entry.future.get(), entry.version);
      ++served;
    }
    // Apply this window's accepted feedback (and any resulting flip)
    // before the next window is submitted — a deterministic stream
    // position, so the served labels don't depend on scheduler timing.
    if (sidecar != nullptr) {
      (void)sidecar->pump();
    }
  }
  out->flush();
  save_shadows(sidecar.get(), flags, tenant_ids);
  server.shutdown();
  std::fprintf(stderr, "served %zu requests from %s\n", served,
               in_path.c_str());
  write_metrics(flags, "pipe");
  if (!decode_error.empty()) {
    std::fprintf(stderr, "corrupt request stream: %s\n",
                 decode_error.c_str());
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------- socket mode --

#ifdef __unix__

bool read_exact(int fd, void* buffer, std::size_t size) {
  auto* bytes = static_cast<char*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, bytes + done, size - done);
    if (n == 0) {
      if (done == 0) {
        return false;  // clean EOF at a frame boundary
      }
      throw std::runtime_error("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("read failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("write failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

/// AF_UNIX serve path: --uds, falling back to the legacy --socket alias
/// when neither --uds nor --tcp was given. Empty means "no UDS listener".
std::string effective_uds_path(const util::FlagParser& flags) {
  const std::string& uds = flags.get_string("uds");
  if (!uds.empty()) {
    return uds;
  }
  if (flags.get_string("tcp").empty()) {
    return flags.get_string("socket");
  }
  return {};
}

int cmd_serve(util::FlagParser& flags) {
  serve::ModelRegistry registry;
  serve::ServerConfig config;
  std::vector<std::string> tenant_ids;
  config.default_tenant = load_models(registry, flags, &tenant_ids);
  config.batcher = batcher_config(flags);
  serve::InferenceServer server(registry, config);
  const std::unique_ptr<serve::OnlineSidecar> sidecar =
      make_sidecar(registry, server, flags, tenant_ids, /*manual=*/false);
  restore_shadows(sidecar.get(), flags, tenant_ids);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGHUP, handle_signal);

  serve::transport::EventLoopConfig loop_config;
  loop_config.connection.read_budget_bytes =
      static_cast<std::size_t>(flags.get_int("read-budget"));
  loop_config.connection.write_backlog_max_bytes =
      static_cast<std::size_t>(flags.get_int("write-backlog"));
  loop_config.connection.max_inflight =
      static_cast<std::size_t>(flags.get_int("max-inflight"));
  loop_config.connection.idle_timeout_us =
      static_cast<std::uint64_t>(flags.get_int("idle-timeout-us"));
  loop_config.max_connections =
      static_cast<std::size_t>(flags.get_int("max-connections"));
  serve::transport::EventLoop loop(server, loop_config);

  const int backlog = static_cast<int>(flags.get_int("backlog"));
  const std::string uds_path = effective_uds_path(flags);
  const std::string& tcp_spec = flags.get_string("tcp");
  if (uds_path.empty() && tcp_spec.empty()) {
    throw std::runtime_error("serve needs --uds PATH and/or --tcp HOST:PORT");
  }
  if (!uds_path.empty()) {
    loop.add_listener(serve::transport::listen_unix(uds_path, backlog));
    util::log_info("listening on unix:" + uds_path);
  }
  if (!tcp_spec.empty()) {
    const auto hp = serve::transport::parse_host_port(tcp_spec);
    loop.add_listener(
        serve::transport::listen_tcp(hp.host, hp.port, backlog));
    util::log_info("listening on tcp:" + tcp_spec);
  }

  while (g_stop == 0) {
    if (g_reload != 0) {
      g_reload = 0;
      try {
        // Rebind every tenant from its original bundle path; in-flight
        // batches finish on their pinned generation.
        (void)load_models(registry, flags);
        util::log_info("reloaded model bundles");
      } catch (const std::exception& error) {
        // Keep serving the previous models; a tenant whose bundle loaded
        // before the failure serves the fresh generation, the rest keep
        // the old one.
        util::log_warn(std::string("reload failed: ") + error.what());
      }
    }
    loop.poll_once(200);
  }
  if (!uds_path.empty()) {
    ::unlink(uds_path.c_str());
  }
  // SIGINT/SIGTERM reached here: persist the shadow learners before the
  // sidecar is torn down so the next start resumes where this one stopped.
  save_shadows(sidecar.get(), flags, tenant_ids);
  server.shutdown();
  write_metrics(flags, "serve");
  return 0;
}

int cmd_client(util::FlagParser& flags) {
  const auto split = data::load_spec(
      flags.get_string("data"), flags.get_double("scale"), 0.0,
      static_cast<std::uint64_t>(flags.get_int("seed")), /*shuffle=*/false);
  const data::Dataset& dataset = split.train;
  auto count = static_cast<std::size_t>(flags.get_int("count"));
  count = count == 0 ? dataset.size() : std::min(count, dataset.size());

  const std::string& tcp_spec = flags.get_string("tcp");
  int fd = -1;
  if (!tcp_spec.empty()) {
    const auto hp = serve::transport::parse_host_port(tcp_spec);
    fd = serve::transport::connect_tcp(hp.host, hp.port);
  } else {
    fd = serve::transport::connect_unix(effective_uds_path(flags));
  }
  const auto feedback_every =
      static_cast<std::size_t>(flags.get_int("feedback-every"));
  const auto read_one_response = [&](const char* what) {
    char header[8];
    if (!read_exact(fd, header, sizeof(header))) {
      throw std::runtime_error("server closed connection");
    }
    const int version =
        std::memcmp(header, serve::kResponseMagicV2, 4) == 0 ? 2 : 1;
    if (version == 1 &&
        std::memcmp(header, serve::kResponseMagic, 4) != 0) {
      throw std::runtime_error("bad response magic on socket");
    }
    std::uint32_t size = 0;
    std::memcpy(&size, header + 4, sizeof(size));
    std::string payload(size, '\0');
    read_exact(fd, payload.data(), size);
    const serve::Response response =
        serve::decode_response_payload(payload, version, "socket");
    std::printf("%s %llu %d %s %s\n", what,
                static_cast<unsigned long long>(response.id), response.label,
                serve::reject_name(response.error),
                response.tenant.empty() ? "-" : response.tenant.c_str());
  };
  for (std::size_t i = 0; i < count; ++i) {
    serve::WireRequest request;
    request.id = i;
    request.deadline_budget_us =
        static_cast<std::uint64_t>(flags.get_int("deadline-us"));
    request.tenant = flags.get_string("tenant");
    request.version = flags.get_int("wire-version");
    const auto features = dataset.sample(i);
    request.features.assign(features.begin(), features.end());
    write_all(fd, serve::encode_request(request));
    read_one_response("response");

    // Ground-truth feedback for every Kth served request: the LSF2 frame
    // correlates by (tenant, id) and the ack comes back as a normal
    // response with label -1.
    if (feedback_every > 0 && (i + 1) % feedback_every == 0) {
      serve::WireFeedback feedback;
      feedback.id = i;
      feedback.tenant = flags.get_string("tenant");
      feedback.label = dataset.label(i);
      write_all(fd, serve::encode_feedback(feedback));
      read_one_response("feedback");
    }
  }
  ::close(fd);
  return 0;
}

#else  // !__unix__

int cmd_serve(util::FlagParser&) {
  std::fprintf(stderr, "socket mode requires a unix platform\n");
  return 1;
}
int cmd_client(util::FlagParser&) {
  std::fprintf(stderr, "socket mode requires a unix platform\n");
  return 1;
}

#endif  // __unix__

// -------------------------------------------------------- scripted tools --

/// One malformed request frame, cycling through the failure kinds the
/// decoder must reject with a typed error (or report as a truncated
/// stream): bad magic, truncation mid-payload, oversized length prefix,
/// lying feature count, lying tenant length, then the slowloris shapes —
/// a frame cut inside its 8-byte header, a bare header whose declared
/// payload never arrives, and garbage interleaved before a valid frame.
/// The last three also seed the incremental-decoder fuzz corpus, where
/// they are additionally re-fed at every split point.
std::string corrupt_frame(const serve::WireRequest& request,
                          std::size_t kind) {
  std::string frame = serve::encode_request(request);
  switch (kind % 8) {
    case 0:  // bad magic
      frame[0] = 'X';
      break;
    case 1:  // truncated mid-payload
      frame.resize(frame.size() - std::min<std::size_t>(frame.size() / 2,
                                                        frame.size() - 9));
      break;
    case 2: {  // hostile length prefix
      const std::uint32_t size = serve::kMaxPayloadBytes + 1;
      std::memcpy(frame.data() + 4, &size, sizeof(size));
      break;
    }
    case 3: {  // feature count larger than the payload holds
      // payload: id(8) deadline(8) tenant_len(2) tenant feature_count(4)
      const std::size_t offset = 8 + 8 + 8 + 2 + request.tenant.size();
      const std::uint32_t lying = 0x00ffffff;
      std::memcpy(frame.data() + offset, &lying, sizeof(lying));
      break;
    }
    case 4: {  // tenant length pointing past the payload end
      const std::uint16_t lying = 0xffff;
      std::memcpy(frame.data() + 8 + 8 + 8, &lying, sizeof(lying));
      break;
    }
    case 5:  // slowloris: cut inside the 8-byte frame header
      frame.resize(3);
      break;
    case 6:  // slowloris: full header, payload never arrives
      frame.resize(8);
      break;
    case 7:  // garbage interleaved ahead of an otherwise valid frame
      frame.insert(0, "\x00\xffnoise", 7);
      break;
  }
  return frame;
}

int cmd_genframes(util::FlagParser& flags) {
  const auto split = data::load_spec(
      flags.get_string("data"), flags.get_double("scale"), 0.0,
      static_cast<std::uint64_t>(flags.get_int("seed")), /*shuffle=*/false);
  const data::Dataset& dataset = split.train;
  auto count = static_cast<std::size_t>(flags.get_int("count"));
  count = count == 0 ? dataset.size() : std::min(count, dataset.size());

  const std::string& out_path = flags.get_string("out");
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open " + out_path);
  }
  const auto feedback_every =
      static_cast<std::size_t>(flags.get_int("feedback-every"));
  std::size_t feedback_count = 0;
  serve::WireRequest request;
  for (std::size_t i = 0; i < count; ++i) {
    request = serve::WireRequest{};
    request.id = i;
    request.deadline_budget_us =
        static_cast<std::uint64_t>(flags.get_int("deadline-us"));
    request.tenant = flags.get_string("tenant");
    request.version = flags.get_int("wire-version");
    const auto features = dataset.sample(i);
    request.features.assign(features.begin(), features.end());
    serve::write_request(out, request);
    // Interleave an LSF2 ground-truth frame right after every Kth
    // request, correlating back to it by id — the shape an online
    // client produces.
    if (feedback_every > 0 && (i + 1) % feedback_every == 0) {
      serve::WireFeedback feedback;
      feedback.id = i;
      feedback.tenant = request.tenant;
      feedback.label = dataset.label(i);
      serve::write_feedback(out, feedback);
      ++feedback_count;
    }
  }
  // Malformed frames go after the valid ones: a reader must fail with a
  // typed error at the first corrupt frame instead of crashing or hanging.
  const auto corrupt = static_cast<std::size_t>(flags.get_int("corrupt"));
  for (std::size_t i = 0; i < corrupt; ++i) {
    const std::string frame = corrupt_frame(request, i);
    out.write(frame.data(),
              static_cast<std::streamsize>(frame.size()));
  }
  std::fprintf(stderr,
               "wrote %zu request frames (+%zu feedback, +%zu corrupt) "
               "to %s\n",
               count, feedback_count, corrupt, out_path.c_str());
  return 0;
}

int cmd_decode(util::FlagParser& flags) {
  const std::string& in_path = flags.get_string("in");
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + in_path);
  }
  std::size_t ok = 0;
  std::size_t rejected = 0;
  serve::Response response;
  while (serve::read_response(in, &response, in_path)) {
    std::printf("%llu %d %s %u\n",
                static_cast<unsigned long long>(response.id), response.label,
                serve::reject_name(response.error), response.batch_size);
    response.ok() ? ++ok : ++rejected;
  }
  std::fprintf(stderr, "ok=%zu rejected=%zu\n", ok, rejected);
  if (const auto expect = flags.get_int("expect-ok");
      expect >= 0 && static_cast<std::size_t>(expect) != ok) {
    std::fprintf(stderr, "expected %lld ok responses, decoded %zu\n",
                 static_cast<long long>(expect), ok);
    return 1;
  }
  return 0;
}

void print_usage() {
  std::puts(
      "usage: lehdc_serve <serve|pipe|genframes|decode|client> [flags]\n"
      "  serve     --model out.lhdp --uds /tmp/lehdc.sock\n"
      "            [--tcp HOST:PORT] (both listeners share one epoll loop;\n"
      "            SIGHUP hot-reloads the bundles; SIGINT/SIGTERM stop)\n"
      "            [--backlog N --max-connections N --idle-timeout-us N]\n"
      "            [--read-budget B --write-backlog B --max-inflight N]\n"
      "            [--online --flip-every N] (LSF2 feedback -> shadow\n"
      "            learner -> blue-green flips)\n"
      "            [--shadow-dir DIR] (restore <tenant>.lhon at startup,\n"
      "            save on SIGINT/SIGTERM shutdown)\n"
      "  pipe      --model out.lhdp --in requests.bin --out responses.bin\n"
      "            ('-' = stdin/stdout; same binary frame protocol)\n"
      "            [--online --flip-every N --shadow-dir DIR]\n"
      "  genframes --data <spec> --count N --out requests.bin\n"
      "            [--tenant id] [--wire-version 1|2] [--corrupt N]\n"
      "            [--feedback-every K] (true-label LSF2 frames)\n"
      "  decode    --in responses.bin [--expect-ok N]\n"
      "  client    --socket /tmp/lehdc.sock --data <spec> --count N\n"
      "            [--feedback-every K] (send feedback, print acks)\n"
      "tenancy:  --models acme=a.lhdp,globex=b.lhdp --tenant acme\n"
      "batching: --max-batch 64 --max-wait-us 1000 --queue-capacity 1024\n"
      "          --tenant-capacity 0 (per-tenant admission cap)\n"
      "data specs: csv:<path> | idx:<images>:<labels> | synth:<profile>\n"
      "run `lehdc_serve <command> --help` for the full flag list");
}

int run_command(const std::string& command, util::FlagParser& flags) {
  if (command == "serve") {
    return cmd_serve(flags);
  }
  if (command == "pipe") {
    return cmd_pipe(flags);
  }
  if (command == "genframes") {
    return cmd_genframes(flags);
  }
  if (command == "decode") {
    return cmd_decode(flags);
  }
  if (command == "client") {
    return cmd_client(flags);
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  print_usage();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];

  util::FlagParser flags("lehdc_serve " + command,
                         "Micro-batching HDC inference server");
  flags.add_string("model", "", "pipeline bundle path (.lhdp)");
  flags.add_string("models", "",
                   "multi-tenant bundles: tenant=path[,tenant=path...] "
                   "(first listed is the default tenant; overrides --model)");
  flags.add_string("tenant", "",
                   "tenant id stamped into generated frames "
                   "(empty = server default)");
  flags.add_int("wire-version", 2,
                "protocol generation for generated frames (1 or 2)");
  flags.add_int("corrupt", 0,
                "genframes: append N malformed frames after the valid ones");
  flags.add_int("tenant-capacity", 0,
                "per-tenant queue admission limit (0 = only the total cap)");
  flags.add_string("socket", "/tmp/lehdc.sock",
                   "unix socket path (legacy alias for --uds)");
  flags.add_string("uds", "", "AF_UNIX listener path (empty = --socket "
                   "unless --tcp was given)");
  flags.add_string("tcp", "", "TCP listener/target as HOST:PORT");
  flags.add_int("backlog", 128, "listen(2) backlog per listener");
  flags.add_int("max-connections", 4096,
                "accepted-connection cap (beyond: accept and close)");
  flags.add_int("idle-timeout-us", 60000000,
                "close a connection after this long without read/write "
                "progress (0 = never)");
  flags.add_int("read-budget", 65536,
                "bytes read per connection per event-loop turn");
  flags.add_int("write-backlog", 1048576,
                "per-connection response backlog bytes before typed "
                "kQueueFull shedding");
  flags.add_int("max-inflight", 256,
                "per-connection submitted-but-unanswered request cap");
  flags.add_string("in", "-", "request/response frame input ('-' = stdin)");
  flags.add_string("out", "-", "frame output path ('-' = stdout)");
  flags.add_string("data", "synth:mnist", "data spec (see --help)");
  flags.add_int("count", 0, "samples to encode as requests (0 = all)");
  flags.add_int("deadline-us", 0,
                "per-request deadline budget in microseconds (0 = none)");
  flags.add_int("max-batch", 64, "micro-batch flush size");
  flags.add_int("max-wait-us", 1000, "micro-batch flush deadline");
  flags.add_int("queue-capacity", 1024,
                "bounded queue admission limit (overload sheds)");
  flags.add_int("window", 256, "pipe mode: requests submitted ahead of "
                "responses (drives batch formation)");
  flags.add_int("expect-ok", -1,
                "decode: fail unless exactly N ok responses (-1 disables)");
  flags.add_int("threads", 0,
                "worker threads (0 = LEHDC_THREADS env var, then hardware)");
  flags.add_int("seed", 1, "data spec seed");
  flags.add_flag("online",
                 "serve/pipe: attach the online-learning sidecar (LSF2 "
                 "feedback -> shadow learner -> blue-green flips)");
  flags.add_int("flip-every", 64,
                "online: attempt a blue-green flip every N shadow updates");
  flags.add_string("shadow-dir", "",
                   "online: directory of per-tenant shadow-learner "
                   "snapshots (<tenant>.lhon) restored at startup and "
                   "saved at shutdown (empty = no persistence)");
  flags.add_int("feedback-every", 0,
                "genframes/client: send a true-label LSF2 feedback frame "
                "after every Kth request (0 = never)");
  flags.add_double("scale", 0.05, "synthetic profile sample scale");
  flags.add_string("metrics-out", "",
                   "write a metrics JSON snapshot here on exit");

  try {
    flags.parse(argc - 1, argv + 1);
    if (const auto threads = flags.get_int("threads"); threads > 0) {
      util::ThreadPool::configure_global(static_cast<std::size_t>(threads));
    }
    if (const std::string env_path = obs::init_from_env();
        !env_path.empty() || !flags.get_string("metrics-out").empty()) {
      obs::set_enabled(true);
    }
    return run_command(command, flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
