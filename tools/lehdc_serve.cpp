// lehdc_serve — micro-batching inference server over pipeline bundles.
//
//   lehdc_serve serve     --model out.lhdp --socket /tmp/lehdc.sock
//   lehdc_serve pipe      --model out.lhdp --in requests.bin --out responses.bin
//   lehdc_serve genframes --data <spec> --count 64 --out requests.bin
//   lehdc_serve decode    --in responses.bin [--expect-ok 64]
//   lehdc_serve client    --socket /tmp/lehdc.sock --data <spec> --count 16
//
// `serve` listens on a local (AF_UNIX) stream socket and speaks the
// length-prefixed binary protocol of serve/protocol.hpp, one handler
// thread per connection; SIGHUP hot-reloads the model bundle from its
// original path without dropping traffic. `pipe` speaks the same protocol
// over files/stdio for scripted testing (CI drives it with frames built by
// `genframes` and checks the output with `decode`). Requests queue into a
// bounded micro-batcher (--max-batch / --max-wait-us / --queue-capacity);
// overload sheds with typed rejections instead of growing memory.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "data/spec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lehdc;

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void handle_signal(int signum) {
  if (signum == SIGHUP) {
    g_reload = 1;
  } else {
    g_stop = 1;
  }
}

serve::BatcherConfig batcher_config(const util::FlagParser& flags) {
  serve::BatcherConfig config;
  config.max_batch = static_cast<std::size_t>(flags.get_int("max-batch"));
  config.max_wait_us =
      static_cast<std::uint64_t>(flags.get_int("max-wait-us"));
  config.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-capacity"));
  return config;
}

/// Submits one wire request (translating the relative deadline budget into
/// an absolute clock deadline) and returns its future.
std::future<serve::Response> submit_wire(serve::InferenceServer& server,
                                         serve::WireRequest request) {
  const std::uint64_t deadline =
      request.deadline_budget_us == 0
          ? 0
          : server.clock().now_us() + request.deadline_budget_us;
  return server.submit(std::move(request.features), deadline, request.model,
                       request.id);
}

void write_metrics(const util::FlagParser& flags, const std::string& mode) {
  const std::string& path = flags.get_string("metrics-out");
  if (path.empty()) {
    return;
  }
  obs::Json context = obs::Json::object();
  context.set("tool", "lehdc_serve");
  context.set("mode", mode);
  context.set("model", flags.get_string("model"));
  obs::write_metrics_json(path, obs::Registry::global(), std::move(context));
}

// ------------------------------------------------------------- pipe mode --

int cmd_pipe(util::FlagParser& flags) {
  serve::ModelRegistry registry;
  registry.load("default", flags.get_string("model"));
  serve::ServerConfig config;
  config.batcher = batcher_config(flags);
  serve::InferenceServer server(registry, config);

  const std::string& in_path = flags.get_string("in");
  const std::string& out_path = flags.get_string("out");
  std::ifstream in_file;
  std::ofstream out_file;
  std::istream* in = &std::cin;
  std::ostream* out = &std::cout;
  if (in_path != "-") {
    in_file.open(in_path, std::ios::binary);
    if (!in_file) {
      throw std::runtime_error("cannot open " + in_path);
    }
    in = &in_file;
  }
  if (out_path != "-") {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      throw std::runtime_error("cannot open " + out_path);
    }
    out = &out_file;
  }

  // Submit up to `window` requests before awaiting any response: the read
  // side runs ahead of the scorer, so the micro-batcher sees real queue
  // depth and forms real batches even from a sequential file.
  const auto window = static_cast<std::size_t>(flags.get_int("window"));
  std::size_t served = 0;
  bool eof = false;
  while (!eof) {
    std::vector<std::future<serve::Response>> inflight;
    serve::WireRequest request;
    while (inflight.size() < window &&
           serve::read_request(*in, &request, in_path)) {
      inflight.push_back(submit_wire(server, std::move(request)));
    }
    eof = inflight.size() < window;
    for (auto& future : inflight) {
      serve::write_response(*out, future.get());
      ++served;
    }
  }
  out->flush();
  server.shutdown();
  std::fprintf(stderr, "served %zu requests from %s\n", served,
               in_path.c_str());
  write_metrics(flags, "pipe");
  return 0;
}

// ---------------------------------------------------------- socket mode --

#ifdef __unix__

bool read_exact(int fd, void* buffer, std::size_t size) {
  auto* bytes = static_cast<char*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, bytes + done, size - done);
    if (n == 0) {
      if (done == 0) {
        return false;  // clean EOF at a frame boundary
      }
      throw std::runtime_error("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("read failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("write failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Reads one request frame straight off the socket (header, bounded
/// length, payload) or returns false on clean EOF.
bool read_request_fd(int fd, serve::WireRequest* out) {
  char header[8];
  if (!read_exact(fd, header, sizeof(header))) {
    return false;
  }
  if (std::memcmp(header, serve::kRequestMagic, 4) != 0) {
    throw std::runtime_error("bad frame magic on socket");
  }
  std::uint32_t size = 0;
  std::memcpy(&size, header + 4, sizeof(size));
  if (size > serve::kMaxPayloadBytes) {
    throw std::runtime_error("oversized frame on socket");
  }
  std::string payload(size, '\0');
  if (size > 0 && !read_exact(fd, payload.data(), size)) {
    return false;
  }
  *out = serve::decode_request_payload(payload, "socket");
  return true;
}

void handle_connection(int fd, serve::InferenceServer* server) {
  try {
    serve::WireRequest request;
    while (read_request_fd(fd, &request)) {
      auto future = submit_wire(*server, std::move(request));
      write_all(fd, serve::encode_response(future.get()));
    }
  } catch (const std::exception& error) {
    util::log_warn(std::string("connection dropped: ") + error.what());
  }
  ::close(fd);
}

int cmd_serve(util::FlagParser& flags) {
  const std::string& model_path = flags.get_string("model");
  const std::string& socket_path = flags.get_string("socket");
  serve::ModelRegistry registry;
  registry.load("default", model_path);
  serve::ServerConfig config;
  config.batcher = batcher_config(flags);
  serve::InferenceServer server(registry, config);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGHUP, handle_signal);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw std::runtime_error("socket() failed");
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  ::unlink(socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    throw std::runtime_error("cannot listen on " + socket_path);
  }
  util::log_info("serving " + model_path + " on " + socket_path);

  std::vector<std::thread> handlers;
  while (g_stop == 0) {
    if (g_reload != 0) {
      g_reload = 0;
      try {
        registry.load("default", model_path);
        util::log_info("reloaded model from " + model_path);
      } catch (const std::exception& error) {
        // Keep serving the previous model; the registry is untouched.
        util::log_warn(std::string("reload failed: ") + error.what());
      }
    }
    pollfd poll_fd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, 200);
    if (ready <= 0) {
      continue;
    }
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      continue;
    }
    handlers.emplace_back(handle_connection, conn_fd, &server);
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  for (std::thread& handler : handlers) {
    handler.join();
  }
  server.shutdown();
  write_metrics(flags, "serve");
  return 0;
}

int cmd_client(util::FlagParser& flags) {
  const auto split = data::load_spec(
      flags.get_string("data"), flags.get_double("scale"), 0.0,
      static_cast<std::uint64_t>(flags.get_int("seed")), /*shuffle=*/false);
  const data::Dataset& dataset = split.train;
  auto count = static_cast<std::size_t>(flags.get_int("count"));
  count = count == 0 ? dataset.size() : std::min(count, dataset.size());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("socket() failed");
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  const std::string& socket_path = flags.get_string("socket");
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to " + socket_path);
  }
  for (std::size_t i = 0; i < count; ++i) {
    serve::WireRequest request;
    request.id = i;
    request.deadline_budget_us =
        static_cast<std::uint64_t>(flags.get_int("deadline-us"));
    const auto features = dataset.sample(i);
    request.features.assign(features.begin(), features.end());
    write_all(fd, serve::encode_request(request));

    char header[8];
    if (!read_exact(fd, header, sizeof(header))) {
      throw std::runtime_error("server closed connection");
    }
    std::uint32_t size = 0;
    std::memcpy(&size, header + 4, sizeof(size));
    std::string payload(size, '\0');
    read_exact(fd, payload.data(), size);
    const serve::Response response =
        serve::decode_response_payload(payload, "socket");
    std::printf("%llu %d %s\n",
                static_cast<unsigned long long>(response.id), response.label,
                serve::reject_name(response.error));
  }
  ::close(fd);
  return 0;
}

#else  // !__unix__

int cmd_serve(util::FlagParser&) {
  std::fprintf(stderr, "socket mode requires a unix platform\n");
  return 1;
}
int cmd_client(util::FlagParser&) {
  std::fprintf(stderr, "socket mode requires a unix platform\n");
  return 1;
}

#endif  // __unix__

// -------------------------------------------------------- scripted tools --

int cmd_genframes(util::FlagParser& flags) {
  const auto split = data::load_spec(
      flags.get_string("data"), flags.get_double("scale"), 0.0,
      static_cast<std::uint64_t>(flags.get_int("seed")), /*shuffle=*/false);
  const data::Dataset& dataset = split.train;
  auto count = static_cast<std::size_t>(flags.get_int("count"));
  count = count == 0 ? dataset.size() : std::min(count, dataset.size());

  const std::string& out_path = flags.get_string("out");
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open " + out_path);
  }
  for (std::size_t i = 0; i < count; ++i) {
    serve::WireRequest request;
    request.id = i;
    request.deadline_budget_us =
        static_cast<std::uint64_t>(flags.get_int("deadline-us"));
    const auto features = dataset.sample(i);
    request.features.assign(features.begin(), features.end());
    serve::write_request(out, request);
  }
  std::fprintf(stderr, "wrote %zu request frames to %s\n", count,
               out_path.c_str());
  return 0;
}

int cmd_decode(util::FlagParser& flags) {
  const std::string& in_path = flags.get_string("in");
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + in_path);
  }
  std::size_t ok = 0;
  std::size_t rejected = 0;
  serve::Response response;
  while (serve::read_response(in, &response, in_path)) {
    std::printf("%llu %d %s %u\n",
                static_cast<unsigned long long>(response.id), response.label,
                serve::reject_name(response.error), response.batch_size);
    response.ok() ? ++ok : ++rejected;
  }
  std::fprintf(stderr, "ok=%zu rejected=%zu\n", ok, rejected);
  if (const auto expect = flags.get_int("expect-ok");
      expect >= 0 && static_cast<std::size_t>(expect) != ok) {
    std::fprintf(stderr, "expected %lld ok responses, decoded %zu\n",
                 static_cast<long long>(expect), ok);
    return 1;
  }
  return 0;
}

void print_usage() {
  std::puts(
      "usage: lehdc_serve <serve|pipe|genframes|decode|client> [flags]\n"
      "  serve     --model out.lhdp --socket /tmp/lehdc.sock\n"
      "            (SIGHUP hot-reloads the bundle; SIGINT/SIGTERM stop)\n"
      "  pipe      --model out.lhdp --in requests.bin --out responses.bin\n"
      "            ('-' = stdin/stdout; same binary frame protocol)\n"
      "  genframes --data <spec> --count N --out requests.bin\n"
      "  decode    --in responses.bin [--expect-ok N]\n"
      "  client    --socket /tmp/lehdc.sock --data <spec> --count N\n"
      "batching: --max-batch 64 --max-wait-us 1000 --queue-capacity 1024\n"
      "data specs: csv:<path> | idx:<images>:<labels> | synth:<profile>\n"
      "run `lehdc_serve <command> --help` for the full flag list");
}

int run_command(const std::string& command, util::FlagParser& flags) {
  if (command == "serve") {
    return cmd_serve(flags);
  }
  if (command == "pipe") {
    return cmd_pipe(flags);
  }
  if (command == "genframes") {
    return cmd_genframes(flags);
  }
  if (command == "decode") {
    return cmd_decode(flags);
  }
  if (command == "client") {
    return cmd_client(flags);
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  print_usage();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];

  util::FlagParser flags("lehdc_serve " + command,
                         "Micro-batching HDC inference server");
  flags.add_string("model", "", "pipeline bundle path (.lhdp)");
  flags.add_string("socket", "/tmp/lehdc.sock", "unix socket path");
  flags.add_string("in", "-", "request/response frame input ('-' = stdin)");
  flags.add_string("out", "-", "frame output path ('-' = stdout)");
  flags.add_string("data", "synth:mnist", "data spec (see --help)");
  flags.add_int("count", 0, "samples to encode as requests (0 = all)");
  flags.add_int("deadline-us", 0,
                "per-request deadline budget in microseconds (0 = none)");
  flags.add_int("max-batch", 64, "micro-batch flush size");
  flags.add_int("max-wait-us", 1000, "micro-batch flush deadline");
  flags.add_int("queue-capacity", 1024,
                "bounded queue admission limit (overload sheds)");
  flags.add_int("window", 256, "pipe mode: requests submitted ahead of "
                "responses (drives batch formation)");
  flags.add_int("expect-ok", -1,
                "decode: fail unless exactly N ok responses (-1 disables)");
  flags.add_int("threads", 0,
                "worker threads (0 = LEHDC_THREADS env var, then hardware)");
  flags.add_int("seed", 1, "data spec seed");
  flags.add_double("scale", 0.05, "synthetic profile sample scale");
  flags.add_string("metrics-out", "",
                   "write a metrics JSON snapshot here on exit");

  try {
    flags.parse(argc - 1, argv + 1);
    if (const auto threads = flags.get_int("threads"); threads > 0) {
      util::ThreadPool::configure_global(static_cast<std::size_t>(threads));
    }
    if (const std::string env_path = obs::init_from_env();
        !env_path.empty() || !flags.get_string("metrics-out").empty()) {
      obs::set_enabled(true);
    }
    return run_command(command, flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
