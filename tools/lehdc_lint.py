#!/usr/bin/env python3
"""lehdc_lint — project-invariant linter for the LeHDC repository.

Enforces repo-specific rules no off-the-shelf tool knows about (run from
ctest as the `lehdc_lint` test and from the CI lint job):

  raw-file-write    src/ may not open files for writing directly
                    (std::ofstream / fopen "w"). Model and pipeline bytes
                    must flow through util::fileio's atomic write-then-
                    rename + CRC-32 path so a crash can never leave a
                    torn, checksumless artifact. The allowlist names the
                    audited non-model writers (fileio itself, the CSV
                    table writer, the metrics/trace exporter, the encoded-
                    dataset cache).
  unseeded-rng      No std::rand / srand / std::random_device in src/.
                    Reproduction claims (bit-identical --resume, batch ==
                    single predict) require every random stream to come
                    from util::rng's explicitly seeded generators.
  stdout-in-library No std::cout / std::cerr / printf-to-stdio in src/.
                    Library code reports through util::log (injectable
                    sink); only the log sink itself and the JSON exporter
                    (whose "-" contract *is* stdout) may touch stdio.
  metric-schema     Every metric-name string literal registered in src/
                    must appear in the lehdc.metrics.v1 name table
                    (src/obs/schema.cpp, LINT-METRICS block), keeping this
                    linter and tools/metrics_schema_check in agreement.
  sleep-in-tests    No sleep_for/usleep/... in tests/. Timing-dependent
                    tests flake and hide races; drive time with
                    serve::FakeClock instead.
  layering          #include edges between src/ subdirectories must follow
                    the layer DAG (hv -> hdc -> train -> core, with util/
                    obs/data as leaves and eval/serve/robustness on top,
                    and chaos consuming serve + robustness). The block-
                    kernel boundary rides this edge: hv owns the word-level
                    primitives (bit-sliced majority, hamming row
                    accumulation), hdc composes them into the block
                    encoder and the fused encode->score kernel.
  simd-in-hv        SIMD intrinsics (<immintrin.h>, _mm*_ calls) may only
                    appear in src/hv/ — the single kernel-dispatch layer.
                    Higher layers (the hdc block kernels included) must
                    compose hv's word-level primitives so new instruction
                    sets are wired up exactly once.
  pragma-once       Every header in src/ carries #pragma once.
  chaos-invariants  Every scenario in the src/chaos matrix
                    (LINT-SCENARIOS block in scenarios.cpp) must register
                    at least one Invariant::k* — an assertion-free chaos
                    scenario proves nothing and silently rots.
  tenant-metrics    Every base name passed to serve::tenant_metric_name()
                    must be an exact lehdc.metrics.v1 schema name, so the
                    per-tenant expansions stay under the reserved
                    "serve.tenant." prefix the validator admits.
  online-metrics    The online-learning surface ("serve.online.*") must be
                    enumerated name-by-name in the LINT-METRICS block —
                    never admitted wholesale via a reserved prefix — and
                    every name must fit serve.online.[a-z0-9_]+. A typo'd
                    or unregistered online metric must fail validation,
                    not silently slip through a prefix.
  mutex-annotations src/ concurrency must be visible to the clang
                    thread-safety analysis (DESIGN.md §5k). Raw std::mutex
                    / std::shared_mutex are banned outside util/mutex.hpp
                    — they carry no capability attributes, so locks taken
                    on them are invisible to -Wthread-safety; use
                    util::Mutex / util::SharedMutex. And every util::Mutex
                    / util::SharedMutex *member* (trailing-underscore
                    naming) must have at least one LEHDC_GUARDED_BY /
                    LEHDC_REQUIRES / LEHDC_ACQUIRE / LEHDC_EXCLUDES user
                    in its file — an unreferenced mutex member means the
                    data it protects is unannotated and the analysis is
                    silently blind to it.

Usage:
  tools/lehdc_lint.py [--root DIR] [--report FILE] [--list-rules]

Exit status: 0 = clean, 1 = violations, 2 = usage/config error.
Suppress a single line with a trailing `// lehdc-lint: allow(<rule>)`.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------- layering --

# Allowed include targets per src/ subdirectory. A file in src/<layer>/ may
# only include headers from the listed directories. This is the layer DAG:
# util and obs are freestanding leaves, hv/data sit above util, nn above hv,
# then hdc -> train -> core, with robustness/eval/serve as top consumers.
LAYERS = {
    "util": {"util"},
    "obs": {"obs", "util"},
    "hv": {"hv", "util"},
    "data": {"data", "util"},
    "nn": {"nn", "hv", "util"},
    "hdc": {"hdc", "hv", "nn", "data", "obs", "util"},
    "train": {"train", "hdc", "hv", "nn", "data", "obs", "util"},
    "robustness": {"robustness", "hdc", "hv", "data", "util"},
    "core": {"core", "train", "hdc", "hv", "nn", "data", "obs", "util"},
    "eval": {"eval", "core", "train", "hdc", "hv", "nn", "data", "obs",
             "util"},
    "serve": {"serve", "core", "train", "hdc", "hv", "nn", "data", "obs",
              "util"},
    "chaos": {"chaos", "serve", "robustness", "core", "train", "hdc", "hv",
              "nn", "data", "obs", "util"},
}

# ------------------------------------------------------- rule allowlists --

# Audited direct file writers (see rule description above).
RAW_WRITE_ALLOW = {
    "src/util/fileio.cpp",    # the atomic+checksummed write path itself
    "src/util/table.cpp",     # CsvWriter: figure/table artifacts, not models
    "src/obs/report.cpp",     # metrics/trace JSON exporter
    "src/hdc/dataset_io.cpp", # encoded-dataset cache (rebuildable, not a model)
}

STDIO_ALLOW = {
    "src/util/log.cpp",   # the default stderr sink behind util::log
    "src/obs/report.cpp", # write_document("-") streams JSON to stdout by contract
}

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

FINDINGS = []


def relpath(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments, preserving newlines and string
    literals, so token rules neither fire on prose nor miss code."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
            elif c == "'":
                state = "squote"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append(c + nxt)
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def suppressed_lines(text: str) -> dict[int, set[str]]:
    """Maps 1-based line numbers to rule names allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        for match in re.finditer(r"lehdc-lint:\s*allow\(([a-z-]+)\)", line):
            allowed.setdefault(lineno, set()).add(match.group(1))
    return allowed


def report(rule: str, rel: str, lineno: int, message: str,
           allowed: dict[int, set[str]]) -> None:
    if rule in allowed.get(lineno, ()):
        return
    FINDINGS.append(f"{rel}:{lineno}: [{rule}] {message}")


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ------------------------------------------------------------ token rules --

RAW_WRITE_RE = re.compile(
    r"std::ofstream|std::fstream"
    r"|fopen\s*\(\s*[^;]*?,\s*\"[wa][^\"]*\"")
RNG_RE = re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b")
STDIO_RE = re.compile(
    r"std::cout|std::cerr|std::clog"
    r"|\bprintf\s*\("                      # printf / std::printf, not *nprintf
    r"|\bputs\s*\("
    r"|fprintf\s*\(\s*std(?:out|err)\b"
    r"|fputs\s*\([^;]*?,\s*std(?:out|err)\s*\)"
    r"|fwrite\s*\([^;]*?,\s*std(?:out|err)\s*\)")
SLEEP_RE = re.compile(
    r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\s*\(")
SIMD_RE = re.compile(
    r"#\s*include\s*<immintrin\.h>|\b_mm(?:256|512)?_[a-z0-9_]+\s*\(")
METRIC_REG_RE = re.compile(
    r"\.\s*(counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
TENANT_METRIC_RE = re.compile(r"tenant_metric_name\s*\(\s*\"([^\"]*)\"")
INCLUDE_RE = re.compile(r"^\s*#\s*include\s+\"([^\"]+)\"", re.M)
# Annotated-wrapper mutex members: repo convention gives members a
# trailing underscore, which keeps function-local rendezvous mutexes
# (error_mutex, done_mutex, ...) out of the member rule.
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:mutable\s+)?(?:util::)?(?:Shared)?Mutex\s+(\w+_)\s*;")
RAW_MUTEX_RE = re.compile(r"\bstd::(?:shared_|timed_|recursive_)?mutex\b")
# Files allowed to hold raw std mutex primitives: the annotated wrapper
# itself (its whole point is owning the raw types).
RAW_MUTEX_ALLOW = {"src/util/mutex.hpp"}
# One matrix entry: {"name", {...invariants...}, &configure_fn}. Applied to
# the comment-stripped LINT-SCENARIOS block of src/chaos/scenarios.cpp.
SCENARIO_ENTRY_RE = re.compile(
    r"\{\s*\"([a-z0-9_]+)\"\s*,(.*?)&[A-Za-z_][A-Za-z0-9_]*\s*\}",
    re.S)


def load_schema_names(root: Path) -> tuple[set[str], list[str]]:
    schema = root / "src" / "obs" / "schema.cpp"
    if not schema.is_file():
        print(f"lehdc_lint: missing {schema} (metric-name schema)",
              file=sys.stderr)
        sys.exit(2)
    text = schema.read_text(encoding="utf-8")
    begin = text.find("LINT-METRICS-BEGIN")
    end = text.find("LINT-METRICS-END")
    if begin < 0 or end < 0 or end <= begin:
        print("lehdc_lint: LINT-METRICS markers not found in schema.cpp",
              file=sys.stderr)
        sys.exit(2)
    names = set(re.findall(r'"([a-z0-9_.]+)"', text[begin:end]))
    prefixes = re.findall(r'std::string_view\{"([a-z0-9_.]+\.)"\}',
                          text[end:])
    if not names:
        print("lehdc_lint: schema name table parsed empty", file=sys.stderr)
        sys.exit(2)
    return names, prefixes


ONLINE_METRIC_SHAPE = re.compile(r"serve\.online\.[a-z0-9_]+$")


def lint_online_metrics(root: Path, schema_names: set[str],
                        schema_prefixes: list[str]) -> None:
    """online-metrics: the serve.online.* namespace is enumerated, not
    prefix-reserved. See the rule description in the module docstring."""
    rel = "src/obs/schema.cpp"
    if "serve.online." in schema_prefixes:
        FINDINGS.append(
            f"{rel}:1: [online-metrics] 'serve.online.' is a reserved "
            "prefix — online metrics must be enumerated exactly in the "
            "LINT-METRICS block, not admitted wholesale")
    online = sorted(n for n in schema_names
                    if n.startswith("serve.online."))
    if not online:
        FINDINGS.append(
            f"{rel}:1: [online-metrics] no serve.online.* names in the "
            "LINT-METRICS block — the online-learning surface must be "
            "registered in the schema")
    for name in online:
        if not ONLINE_METRIC_SHAPE.fullmatch(name):
            FINDINGS.append(
                f"{rel}:1: [online-metrics] '{name}' does not fit "
                "serve.online.[a-z0-9_]+ — one lowercase segment after "
                "the namespace")


def lint_scenario_matrix(root: Path) -> None:
    """chaos-invariants: every entry in a scenario matrix registers at
    least one Invariant::k* (the transport matrix's TransportInvariant::k*
    satisfies the same pattern). Matrices live between LINT-SCENARIOS
    markers in src/chaos/scenarios.cpp (server-level) and
    src/chaos/transport.cpp (byte-level); a repo without src/chaos yet is
    clean by definition."""
    for filename in ("scenarios.cpp", "transport.cpp"):
        path = root / "src" / "chaos" / filename
        if path.is_file():
            lint_one_scenario_matrix(path, root)


def lint_one_scenario_matrix(scenarios: Path, root: Path) -> None:
    raw = scenarios.read_text(encoding="utf-8")
    rel = relpath(scenarios, root)
    allowed = suppressed_lines(raw)
    text = strip_comments(raw)
    begin = text.find("LINT-SCENARIOS-BEGIN")
    end = text.find("LINT-SCENARIOS-END")
    # The markers live in comments in the real file; look in the raw text
    # for their positions and slice the stripped text at the same offsets
    # (strip_comments preserves offsets by design).
    if begin < 0:
        begin = raw.find("LINT-SCENARIOS-BEGIN")
        end = raw.find("LINT-SCENARIOS-END")
    if begin < 0 or end < 0 or end <= begin:
        report("chaos-invariants", rel, 1,
               "LINT-SCENARIOS markers missing — the scenario matrix must "
               "be delimited so every entry's invariants are lintable",
               allowed)
        return
    block = text[begin:end]
    entries = SCENARIO_ENTRY_RE.findall(block)
    if not entries:
        report("chaos-invariants", rel, line_of(text, begin),
               "scenario matrix parsed empty — no {\"name\", {...}, &fn} "
               "entries found between the LINT-SCENARIOS markers", allowed)
        return
    for match in SCENARIO_ENTRY_RE.finditer(block):
        name, body = match.group(1), match.group(2)
        if "Invariant::k" not in body:
            report("chaos-invariants", rel,
                   line_of(text, begin + match.start()),
                   f"scenario '{name}' registers no Invariant::k* — every "
                   "chaos scenario must assert explicit invariants",
                   allowed)


def lint_file(path: Path, root: Path, schema_names: set[str],
              schema_prefixes: list[str]) -> None:
    rel = relpath(path, root)
    raw = path.read_text(encoding="utf-8")
    allowed = suppressed_lines(raw)
    text = strip_comments(raw)
    in_src = rel.startswith("src/")
    in_tests = rel.startswith("tests/")

    if in_src:
        if rel not in RAW_WRITE_ALLOW:
            for m in RAW_WRITE_RE.finditer(text):
                report("raw-file-write", rel, line_of(text, m.start()),
                       f"direct file write ({m.group(0).split('(')[0].strip()}) — "
                       "route artifact bytes through util::fileio's atomic "
                       "checksummed writer (see DESIGN.md §5f)", allowed)
        for m in RNG_RE.finditer(text):
            report("unseeded-rng", rel, line_of(text, m.start()),
                   f"{m.group(0).strip()} breaks run reproducibility — use "
                   "util::rng's seeded generators", allowed)
        if not rel.startswith("src/hv/"):
            for m in SIMD_RE.finditer(text):
                report("simd-in-hv", rel, line_of(text, m.start()),
                       f"SIMD intrinsic ({m.group(0).strip()}) outside "
                       "src/hv — compose hv's word-level kernels "
                       "(hv/batch_score.hpp, hv/bitslice.hpp) instead",
                       allowed)
        if rel not in STDIO_ALLOW:
            for m in STDIO_RE.finditer(text):
                report("stdout-in-library", rel, line_of(text, m.start()),
                       f"library code writes to stdio ({m.group(0).strip()}) — "
                       "use util::log or take a std::ostream&", allowed)
        if rel != "src/obs/schema.cpp":
            for m in METRIC_REG_RE.finditer(text):
                name = m.group(2)
                known = name in schema_names or any(
                    name.startswith(p) for p in schema_prefixes)
                if not known:
                    report("metric-schema", rel, line_of(text, m.start()),
                           f"metric '{name}' is not in the lehdc.metrics.v1 "
                           "name table (src/obs/schema.cpp)", allowed)
        # Per-tenant expansions (base + "." + tenant id) are admitted by
        # reserved prefix, so the base itself must be an exact schema name
        # or the expansion silently escapes validation.
        for m in TENANT_METRIC_RE.finditer(text):
            base = m.group(1)
            if base not in schema_names:
                report("tenant-metrics", rel, line_of(text, m.start()),
                       f"tenant metric base '{base}' is not an exact "
                       "lehdc.metrics.v1 schema name "
                       "(src/obs/schema.cpp)", allowed)
        # Thread-safety visibility (see rule description up top).
        if rel not in RAW_MUTEX_ALLOW:
            for m in RAW_MUTEX_RE.finditer(text):
                report("mutex-annotations", rel, line_of(text, m.start()),
                       f"{m.group(0)} is invisible to -Wthread-safety — "
                       "use util::Mutex / util::SharedMutex "
                       "(src/util/mutex.hpp)", allowed)
        for m in MUTEX_MEMBER_RE.finditer(text):
            name = m.group(1)
            user = re.search(
                r"LEHDC_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) +
                r"\s*\)|LEHDC_(?:REQUIRES|REQUIRES_SHARED|ACQUIRE|"
                r"ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|TRY_ACQUIRE|"
                r"EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY)"
                r"\([^)]*\b" + re.escape(name) + r"\b", raw)
            if user is None:
                report("mutex-annotations", rel, line_of(text, m.start()),
                       f"mutex member '{name}' has no LEHDC_GUARDED_BY / "
                       "LEHDC_REQUIRES / ... users — annotate the state it "
                       "protects so -Wthread-safety can see it", allowed)
        # Layering + header hygiene.
        parts = rel.split("/")
        layer = parts[1] if len(parts) > 2 else None
        if layer in LAYERS:
            for m in INCLUDE_RE.finditer(text):
                target = m.group(1).split("/")[0]
                if "/" in m.group(1) and target in LAYERS and \
                        target not in LAYERS[layer]:
                    report("layering", rel, line_of(text, m.start()),
                           f"src/{layer} may not include \"{m.group(1)}\" "
                           f"(allowed: {', '.join(sorted(LAYERS[layer]))})",
                           allowed)
        if path.suffix in (".hpp", ".h") and "#pragma once" not in text:
            report("pragma-once", rel, 1,
                   "header is missing #pragma once", allowed)

    if in_tests:
        for m in SLEEP_RE.finditer(text):
            report("sleep-in-tests", rel, line_of(text, m.start()),
                   f"{m.group(0).strip()} in a test — drive time with "
                   "serve::FakeClock, never wall-clock sleeps", allowed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--report", default=None,
                        help="also write findings to this file")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print(__doc__)
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"lehdc_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    schema_names, schema_prefixes = load_schema_names(root)
    lint_online_metrics(root, schema_names, schema_prefixes)
    lint_scenario_matrix(root)

    files = []
    for top in ("src", "tests"):
        files.extend(sorted((root / top).rglob("*")))
    for path in files:
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            lint_file(path, root, schema_names, schema_prefixes)

    text = "\n".join(FINDINGS)
    if args.report:
        Path(args.report).write_text(
            (text + "\n") if text else "clean\n", encoding="utf-8")
    if FINDINGS:
        print(text)
        print(f"lehdc_lint: {len(FINDINGS)} violation(s)", file=sys.stderr)
        return 1
    print("lehdc_lint: clean "
          f"({sum(1 for f in files if f.suffix in SOURCE_SUFFIXES)} files, "
          f"{len(schema_names)} schema metric names)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
