// metrics_schema_check — validates lehdc.metrics.v1 JSON documents.
//
//   metrics_schema_check [--allow-unknown] <file.json> [more.json ...]
//   metrics_schema_check -                 (read one document from stdin)
//
// Two gates per document:
//   1. Shape: schema tag, section layout, name charset/uniqueness,
//      histogram bucket consistency (obs::validate_metrics_json).
//   2. Names: every metric must be registered in the lehdc.metrics.v1
//      name schema (src/obs/schema.cpp) or fall under a reserved prefix.
//      Unknown names are an error — exit non-zero — so this checker and
//      the lehdc_lint.py metric-name rule agree on what may ship.
//      --allow-unknown downgrades gate 2 to a warning (exploratory runs).
//
// Exits 0 when every document passes, 1 otherwise (printing the first
// shape violation and all unknown names per file). CI runs this over the
// CLI's --metrics-out and the benches' BENCH_*.json artifacts so schema
// drift fails the job instead of silently breaking downstream tooling.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/schema.hpp"
#include "util/fileio.hpp"

namespace {

std::string read_stdin() {
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, stdin)) > 0) {
    text.append(buffer, n);
  }
  return text;
}

int check_document(const std::string& label, const std::string& text,
                   bool allow_unknown) {
  try {
    const lehdc::obs::Json doc = lehdc::obs::Json::parse(text);
    if (const std::string error = lehdc::obs::validate_metrics_json(doc);
        !error.empty()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", label.c_str(),
                   error.c_str());
      return 1;
    }
    const std::vector<std::string> unknown =
        lehdc::obs::unknown_metric_names(doc);
    if (!unknown.empty()) {
      for (const std::string& name : unknown) {
        std::fprintf(stderr,
                     "%s: %s: metric '%s' is not registered in the "
                     "lehdc.metrics.v1 schema (src/obs/schema.cpp)\n",
                     label.c_str(), allow_unknown ? "WARNING" : "UNKNOWN",
                     name.c_str());
      }
      if (!allow_unknown) {
        return 1;
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: PARSE ERROR: %s\n", label.c_str(),
                 error.what());
    return 1;
  }
  std::printf("%s: ok\n", label.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool allow_unknown = false;
  int first_file = 1;
  if (first_file < argc &&
      std::strcmp(argv[first_file], "--allow-unknown") == 0) {
    allow_unknown = true;
    ++first_file;
  }
  if (first_file >= argc) {
    std::fprintf(
        stderr,
        "usage: metrics_schema_check [--allow-unknown] <file.json|-> "
        "[more ...]\n");
    return 2;
  }
  int status = 0;
  for (int i = first_file; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      const std::string text =
          arg == "-" ? read_stdin() : lehdc::util::read_file(arg);
      status |= check_document(arg == "-" ? "<stdin>" : arg, text,
                               allow_unknown);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: %s\n", arg.c_str(), error.what());
      status = 1;
    }
  }
  return status;
}
