// metrics_schema_check — validates lehdc.metrics.v1 JSON documents.
//
//   metrics_schema_check <file.json> [more.json ...]
//   metrics_schema_check -            (read one document from stdin)
//
// Exits 0 when every document is schema-valid, 1 otherwise (printing the
// first violation per file). CI runs this over the CLI's --metrics-out and
// the benches' BENCH_*.json artifacts so a schema drift fails the job
// instead of silently breaking downstream tooling.
#include <cstdio>
#include <exception>
#include <string>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/fileio.hpp"

namespace {

std::string read_stdin() {
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, stdin)) > 0) {
    text.append(buffer, n);
  }
  return text;
}

int check_document(const std::string& label, const std::string& text) {
  try {
    const lehdc::obs::Json doc = lehdc::obs::Json::parse(text);
    if (const std::string error = lehdc::obs::validate_metrics_json(doc);
        !error.empty()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", label.c_str(),
                   error.c_str());
      return 1;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: PARSE ERROR: %s\n", label.c_str(),
                 error.what());
    return 1;
  }
  std::printf("%s: ok\n", label.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: metrics_schema_check <file.json|-> [more ...]\n");
    return 2;
  }
  int status = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      const std::string text =
          arg == "-" ? read_stdin() : lehdc::util::read_file(arg);
      status |= check_document(arg == "-" ? "<stdin>" : arg, text);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: %s\n", arg.c_str(), error.what());
      status = 1;
    }
  }
  return status;
}
